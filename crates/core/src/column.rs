//! Growable typed column vectors — the in-memory form of *Partial Packs*.
//!
//! A partial pack is the mutable tail of a column within the last row
//! group (paper §4.1): uncompressed, append-only, and turned into a
//! compressed immutable [`crate::pack::Pack`] when the row group fills.

use imci_common::{DataType, Error, FxHashMap, Result, Value};

/// Dictionary for string columns: code -> string and string -> code.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    strings: Vec<String>,
    codes: FxHashMap<String, u32>,
}

impl Dictionary {
    /// Intern `s`, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.codes.get(s) {
            return c;
        }
        let c = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.codes.insert(s.to_owned(), c);
        c
    }

    /// Resolve a code.
    pub fn get(&self, code: u32) -> Option<&str> {
        self.strings.get(code as usize).map(|s| s.as_str())
    }

    /// Look up an existing string's code (no interning).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.codes.get(s).copied()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All interned strings in code order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }
}

/// A mutable, append/overwrite-able typed column.
///
/// Rows are written at explicit offsets (Phase-2 workers own disjoint
/// row slots); positions never written remain NULL.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// i64 / DATE storage.
    Int {
        /// Values (garbage where null).
        vals: Vec<i64>,
        /// Null flags.
        nulls: Vec<bool>,
    },
    /// f64 storage.
    Double {
        /// Values (garbage where null).
        vals: Vec<f64>,
        /// Null flags.
        nulls: Vec<bool>,
    },
    /// Dictionary-encoded strings.
    Str {
        /// Dictionary codes (garbage where null).
        codes: Vec<u32>,
        /// Null flags.
        nulls: Vec<bool>,
        /// The dictionary.
        dict: Dictionary,
    },
}

impl ColumnData {
    /// Fresh column of the given type.
    pub fn new(ty: DataType) -> ColumnData {
        match ty {
            DataType::Int | DataType::Date => ColumnData::Int {
                vals: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Double => ColumnData::Double {
                vals: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Str => ColumnData::Str {
                codes: Vec::new(),
                nulls: Vec::new(),
                dict: Dictionary::default(),
            },
        }
    }

    /// Logical length (highest written offset + 1).
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { nulls, .. }
            | ColumnData::Double { nulls, .. }
            | ColumnData::Str { nulls, .. } => nulls.len(),
        }
    }

    /// Whether no offsets were written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn grow_to(&mut self, len: usize) {
        match self {
            ColumnData::Int { vals, nulls } => {
                vals.resize(len, 0);
                nulls.resize(len, true);
            }
            ColumnData::Double { vals, nulls } => {
                vals.resize(len, 0.0);
                nulls.resize(len, true);
            }
            ColumnData::Str { codes, nulls, .. } => {
                codes.resize(len, 0);
                nulls.resize(len, true);
            }
        }
    }

    /// Write `v` at offset `i` (extending with NULLs as needed).
    pub fn set(&mut self, i: usize, v: &Value) -> Result<()> {
        if self.len() <= i {
            self.grow_to(i + 1);
        }
        match (self, v) {
            (ColumnData::Int { nulls, .. }, Value::Null)
            | (ColumnData::Double { nulls, .. }, Value::Null)
            | (ColumnData::Str { nulls, .. }, Value::Null) => {
                nulls[i] = true;
            }
            (ColumnData::Int { vals, nulls }, Value::Int(x))
            | (ColumnData::Int { vals, nulls }, Value::Date(x)) => {
                vals[i] = *x;
                nulls[i] = false;
            }
            (ColumnData::Double { vals, nulls }, Value::Double(x)) => {
                vals[i] = *x;
                nulls[i] = false;
            }
            (ColumnData::Str { codes, nulls, dict }, Value::Str(s)) => {
                codes[i] = dict.intern(s);
                nulls[i] = false;
            }
            (col, v) => {
                return Err(Error::Storage(format!(
                    "type mismatch writing {v} into {} column",
                    match col {
                        ColumnData::Int { .. } => "INT",
                        ColumnData::Double { .. } => "DOUBLE",
                        ColumnData::Str { .. } => "STR",
                    }
                )))
            }
        }
        Ok(())
    }

    /// Read the value at offset `i` (NULL past the end).
    pub fn get(&self, i: usize) -> Value {
        if i >= self.len() {
            return Value::Null;
        }
        match self {
            ColumnData::Int { vals, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Int(vals[i])
                }
            }
            ColumnData::Double { vals, nulls } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Double(vals[i])
                }
            }
            ColumnData::Str { codes, nulls, dict } => {
                if nulls[i] {
                    Value::Null
                } else {
                    Value::Str(dict.get(codes[i]).unwrap_or("").to_owned())
                }
            }
        }
    }

    /// Gather rows at `idx` into a new column (typed bulk copy — the
    /// hot path of scans and filters; avoids per-cell `Value` boxing).
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int { vals, nulls } => {
                let mut v = Vec::with_capacity(idx.len());
                let mut n = Vec::with_capacity(idx.len());
                for &i in idx {
                    let i = i as usize;
                    if i < vals.len() {
                        v.push(vals[i]);
                        n.push(nulls[i]);
                    } else {
                        v.push(0);
                        n.push(true);
                    }
                }
                ColumnData::Int { vals: v, nulls: n }
            }
            ColumnData::Double { vals, nulls } => {
                let mut v = Vec::with_capacity(idx.len());
                let mut n = Vec::with_capacity(idx.len());
                for &i in idx {
                    let i = i as usize;
                    if i < vals.len() {
                        v.push(vals[i]);
                        n.push(nulls[i]);
                    } else {
                        v.push(0.0);
                        n.push(true);
                    }
                }
                ColumnData::Double { vals: v, nulls: n }
            }
            ColumnData::Str { codes, nulls, dict } => {
                let mut cs = Vec::with_capacity(idx.len());
                let mut n = Vec::with_capacity(idx.len());
                for &i in idx {
                    let i = i as usize;
                    if i < codes.len() {
                        cs.push(codes[i]);
                        n.push(nulls[i]);
                    } else {
                        cs.push(0);
                        n.push(true);
                    }
                }
                ColumnData::Str {
                    codes: cs,
                    nulls: n,
                    dict: dict.clone(),
                }
            }
        }
    }

    /// Append the first `rows` entries of `other` (typed bulk copy —
    /// batch concatenation without per-cell `Value` boxing). String
    /// dictionaries merge once per append, not once per row; columns
    /// stored shorter than `rows` pad with NULLs, matching the
    /// NULL-past-the-end read semantics of [`ColumnData::get`].
    pub fn append(&mut self, other: &ColumnData, rows: usize) -> Result<()> {
        let stored = rows.min(other.len());
        match (self, other) {
            (
                ColumnData::Int { vals, nulls },
                ColumnData::Int {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                vals.extend_from_slice(&ov[..stored]);
                nulls.extend_from_slice(&on[..stored]);
                vals.resize(vals.len() + rows - stored, 0);
                nulls.resize(nulls.len() + rows - stored, true);
            }
            (
                ColumnData::Double { vals, nulls },
                ColumnData::Double {
                    vals: ov,
                    nulls: on,
                },
            ) => {
                vals.extend_from_slice(&ov[..stored]);
                nulls.extend_from_slice(&on[..stored]);
                vals.resize(vals.len() + rows - stored, 0.0);
                nulls.resize(nulls.len() + rows - stored, true);
            }
            (
                ColumnData::Str { codes, nulls, dict },
                ColumnData::Str {
                    codes: oc,
                    nulls: on,
                    dict: od,
                },
            ) => {
                let remap: Vec<u32> = od.strings().iter().map(|s| dict.intern(s)).collect();
                // Codes at NULL slots are always 0 by construction; an
                // all-null source may carry an empty dictionary.
                codes.extend(
                    oc[..stored]
                        .iter()
                        .map(|&c| remap.get(c as usize).copied().unwrap_or(0)),
                );
                nulls.extend_from_slice(&on[..stored]);
                codes.resize(codes.len() + rows - stored, 0);
                nulls.resize(nulls.len() + rows - stored, true);
            }
            (me, other) => {
                return Err(Error::Storage(format!(
                    "cannot append {} column to {} column",
                    match other {
                        ColumnData::Int { .. } => "INT",
                        ColumnData::Double { .. } => "DOUBLE",
                        ColumnData::Str { .. } => "STR",
                    },
                    match me {
                        ColumnData::Int { .. } => "INT",
                        ColumnData::Double { .. } => "DOUBLE",
                        ColumnData::Str { .. } => "STR",
                    }
                )))
            }
        }
        Ok(())
    }

    /// Drop all rows past the first `n` (no-op when already shorter).
    /// Lets `LIMIT` shorten a batch in place instead of gathering a
    /// prefix copy.
    pub fn truncate(&mut self, n: usize) {
        match self {
            ColumnData::Int { vals, nulls } => {
                vals.truncate(n);
                nulls.truncate(n);
            }
            ColumnData::Double { vals, nulls } => {
                vals.truncate(n);
                nulls.truncate(n);
            }
            ColumnData::Str { codes, nulls, .. } => {
                codes.truncate(n);
                nulls.truncate(n);
            }
        }
    }

    /// Data type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int { .. } => DataType::Int,
            ColumnData::Double { .. } => DataType::Double,
            ColumnData::Str { .. } => DataType::Str,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_all_types() {
        let mut c = ColumnData::new(DataType::Int);
        c.set(0, &Value::Int(5)).unwrap();
        c.set(2, &Value::Int(-9)).unwrap();
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null, "skipped offsets are NULL");
        assert_eq!(c.get(2), Value::Int(-9));
        assert_eq!(c.get(99), Value::Null);

        let mut d = ColumnData::new(DataType::Double);
        d.set(0, &Value::Double(1.5)).unwrap();
        assert_eq!(d.get(0), Value::Double(1.5));

        let mut s = ColumnData::new(DataType::Str);
        s.set(0, &Value::Str("abc".into())).unwrap();
        s.set(1, &Value::Str("abc".into())).unwrap();
        s.set(2, &Value::Str("def".into())).unwrap();
        assert_eq!(s.get(1), Value::Str("abc".into()));
        if let ColumnData::Str { dict, .. } = &s {
            assert_eq!(dict.len(), 2, "dictionary dedups repeats");
        }
    }

    #[test]
    fn date_stored_in_int_column() {
        let mut c = ColumnData::new(DataType::Date);
        c.set(0, &Value::Date(1234)).unwrap();
        // Int columns hold dates as day numbers.
        assert_eq!(c.get(0), Value::Int(1234));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = ColumnData::new(DataType::Int);
        assert!(c.set(0, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn overwrite_supported() {
        let mut c = ColumnData::new(DataType::Int);
        c.set(0, &Value::Int(1)).unwrap();
        c.set(0, &Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Int(2));
        c.set(0, &Value::Null).unwrap();
        assert_eq!(c.get(0), Value::Null);
    }

    #[test]
    fn dictionary_behaviour() {
        let mut d = Dictionary::default();
        let a = d.intern("x");
        let b = d.intern("y");
        assert_eq!(d.intern("x"), a);
        assert_ne!(a, b);
        assert_eq!(d.get(a), Some("x"));
        assert_eq!(d.code_of("y"), Some(b));
        assert_eq!(d.code_of("zzz"), None);
        assert_eq!(d.strings(), &["x".to_string(), "y".to_string()]);
    }
}
