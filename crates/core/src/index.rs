//! The In-Memory Column Index (paper §4): append-only row groups + RID
//! locator + MVCC snapshots.
//!
//! DML semantics follow §4.2 exactly:
//!
//! * **Insert** = allocate a RID from the partial group → record the
//!   PK→RID mapping → write column data → stamp the insert VID.
//! * **Delete** = locator lookup → stamp the delete VID → remove the
//!   PK→RID mapping.
//! * **Update** = delete followed by insert (out-of-place; the new
//!   version is appended to the partial packs).
//!
//! Reads open a [`Snapshot`] pinned at the current visible watermark;
//! active snapshots hold back compaction reclamation and the insert-map
//! drop optimization via the min-active tracking here.

use crate::locator::RidLocator;
use crate::rowgroup::RowGroup;
use crate::selvec::SelVec;
use imci_common::{DataType, Error, Result, Rid, Schema, Value, Vid};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default rows per row group (the paper's 64 Ki).
pub const DEFAULT_GROUP_CAPACITY: usize = 64 * 1024;

/// Column index over a table.
pub struct ColumnIndex {
    /// Owning table.
    pub table_id: imci_common::TableId,
    /// Covered column ordinals in the *table* schema. The primary key is
    /// always included (the locator and compaction need it).
    pub covered: Vec<usize>,
    /// Types of covered columns.
    pub col_types: Vec<DataType>,
    /// Position of the PK within `covered`.
    pub pk_pos: usize,
    group_cap: usize,
    groups: RwLock<Vec<Arc<RowGroup>>>,
    next_rid: AtomicU64,
    locator: RidLocator,
    /// Highest VID whose effects are fully applied (readers snapshot it).
    visible_vid: AtomicU64,
    /// Active snapshot registry: csn -> refcount.
    active: Mutex<BTreeMap<u64, usize>>,
    /// Table-level row statistics for the optimizer.
    rows_inserted: AtomicU64,
    rows_deleted: AtomicU64,
}

/// A pinned read view.
pub struct Snapshot {
    /// The snapshot's commit sequence number: rows with
    /// `insert_vid <= csn < delete_vid` are visible.
    pub csn: u64,
    index: Arc<ColumnIndex>,
}

/// One scan work unit ("morsel" source): a row group plus the row
/// offsets visible at the owning snapshot's CSN, resolved when the scan
/// is dispatched. A worker operating on a `PinnedGroup` never consults
/// MVCC state again — visibility was decided once, on the dispatching
/// thread — so the morsel's result is a pure function of the group's
/// column data and this selection, independent of scheduling.
#[derive(Clone)]
pub struct PinnedGroup {
    /// The row group to scan.
    pub group: Arc<RowGroup>,
    /// Offsets visible at the snapshot CSN, ascending.
    pub visible: SelVec,
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut a = self.index.active.lock();
        if let Some(c) = a.get_mut(&self.csn) {
            *c -= 1;
            if *c == 0 {
                a.remove(&self.csn);
            }
        }
    }
}

impl Snapshot {
    /// Row groups as of this snapshot.
    pub fn groups(&self) -> Vec<Arc<RowGroup>> {
        self.index.groups.read().clone()
    }

    /// The index this snapshot reads.
    pub fn index(&self) -> &Arc<ColumnIndex> {
        &self.index
    }

    /// Pin one group's visibility at this snapshot's CSN. Returns
    /// `None` for reclaimed groups and groups with no visible rows, so
    /// callers never dispatch empty morsels.
    pub fn pin_group(&self, group: &Arc<RowGroup>) -> Option<PinnedGroup> {
        if group.is_reclaimed() {
            return None;
        }
        let visible = group.visible_offsets(self.csn);
        if visible.is_empty() {
            return None;
        }
        Some(PinnedGroup {
            group: group.clone(),
            visible,
        })
    }

    /// Pin every group's visibility (see [`Snapshot::pin_group`]) —
    /// the snapshot/visibility handoff for morsel-driven scans.
    pub fn pin_groups(&self) -> Vec<PinnedGroup> {
        self.groups()
            .iter()
            .filter_map(|g| self.pin_group(g))
            .collect()
    }

    /// Point lookup by PK (visibility-checked).
    pub fn get_by_pk(&self, pk: i64) -> Option<Vec<Value>> {
        let rid = self.index.locator.get(pk)?;
        let (g, off) = self.index.rid_pos(rid);
        let groups = self.index.groups.read();
        let group = groups.get(g)?;
        if !group.visible(off, self.csn) {
            return None;
        }
        Some((0..group.width()).map(|c| group.value_at(c, off)).collect())
    }
}

impl ColumnIndex {
    /// Build an index covering `schema`'s declared column-index columns
    /// (plus the PK, added implicitly when absent).
    pub fn for_schema(schema: &Schema, group_cap: usize) -> Arc<ColumnIndex> {
        let mut covered: Vec<usize> = schema.column_index_cols().to_vec();
        if covered.is_empty() {
            // No explicit column list: cover the whole table.
            covered = (0..schema.width()).collect();
        }
        let pk = schema.pk_col();
        if !covered.contains(&pk) {
            covered.insert(0, pk);
        }
        let col_types = covered.iter().map(|&c| schema.columns[c].ty).collect();
        let pk_pos = covered.iter().position(|&c| c == pk).unwrap();
        Arc::new(ColumnIndex {
            table_id: schema.table_id,
            covered,
            col_types,
            pk_pos,
            group_cap: group_cap.max(4),
            groups: RwLock::new(Vec::new()),
            next_rid: AtomicU64::new(0),
            locator: RidLocator::new(64 * 1024),
            visible_vid: AtomicU64::new(0),
            active: Mutex::new(BTreeMap::new()),
            rows_inserted: AtomicU64::new(0),
            rows_deleted: AtomicU64::new(0),
        })
    }

    /// Row group capacity.
    pub fn group_capacity(&self) -> usize {
        self.group_cap
    }

    /// The RID locator.
    pub fn locator(&self) -> &RidLocator {
        &self.locator
    }

    /// Split a RID into (group index, offset).
    #[inline]
    pub fn rid_pos(&self, rid: Rid) -> (usize, usize) {
        let r = rid.get() as usize;
        (r / self.group_cap, r % self.group_cap)
    }

    fn group_for(&self, g: usize) -> Arc<RowGroup> {
        {
            let groups = self.groups.read();
            if let Some(grp) = groups.get(g) {
                return grp.clone();
            }
        }
        let mut groups = self.groups.write();
        while groups.len() <= g {
            let id = groups.len() as u32;
            groups.push(Arc::new(RowGroup::new(id, self.group_cap, &self.col_types)));
        }
        groups[g].clone()
    }

    /// Allocate `n` consecutive RIDs (used by the large-transaction
    /// pre-commit path, §5.5: "request a continuous RID for all rows").
    pub fn alloc_rids(&self, n: usize) -> Rid {
        Rid(self.next_rid.fetch_add(n as u64, Ordering::SeqCst))
    }

    /// Extract covered column values from a full table row.
    pub fn project_row(&self, full_row: &[Value]) -> Vec<Value> {
        self.covered.iter().map(|&c| full_row[c].clone()).collect()
    }

    /// §4.2 Insert. `values` are the covered columns (via
    /// [`Self::project_row`]); returns the RID.
    pub fn insert(&self, vid: Vid, values: &[Value]) -> Result<Rid> {
        let pk = values[self.pk_pos]
            .as_int()
            .ok_or_else(|| Error::Storage("column index insert without integer pk".into()))?;
        let rid = self.alloc_rids(1);
        // Step 2 of §4.2: record the PK→RID mapping.
        self.locator.insert(pk, rid);
        // Step 3: write the row data into the empty slot.
        let (g, off) = self.rid_pos(rid);
        let group = self.group_for(g);
        group.write_row(off, values)?;
        // Step 4: stamp the insert VID (commit sequence number).
        group.set_insert_vid(off, vid);
        group.seal_if_full();
        self.rows_inserted.fetch_add(1, Ordering::Relaxed);
        Ok(rid)
    }

    /// Insert at a pre-allocated RID with invalid VIDs (pre-commit of a
    /// large transaction, §5.5). The row stays invisible until
    /// [`Self::rectify_vid`].
    pub fn insert_precommitted(&self, rid: Rid, values: &[Value]) -> Result<()> {
        let (g, off) = self.rid_pos(rid);
        let group = self.group_for(g);
        group.write_row(off, values)?;
        // VIDs left unset == invalid == invisible.
        self.rows_inserted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rectify a pre-committed row's insert VID at commit time (§5.5).
    pub fn rectify_vid(&self, rid: Rid, vid: Vid) {
        let (g, off) = self.rid_pos(rid);
        let group = self.group_for(g);
        group.set_insert_vid(off, vid);
        group.seal_if_full();
    }

    /// Publish a pre-committed row's PK→RID mapping (merge of the
    /// temporary locator into the global one, §5.5).
    pub fn publish_mapping(&self, pk: i64, rid: Rid) {
        self.locator.insert(pk, rid);
    }

    /// §4.2 Delete: locator lookup → stamp delete VID → drop mapping.
    pub fn delete(&self, vid: Vid, pk: i64) -> Result<Rid> {
        let rid = self
            .locator
            .get(pk)
            .ok_or_else(|| Error::Storage(format!("column index delete: pk {pk} not found")))?;
        let (g, off) = self.rid_pos(rid);
        let group = self.group_for(g);
        group.set_delete_vid(off, vid);
        self.locator.remove(pk);
        self.rows_deleted.fetch_add(1, Ordering::Relaxed);
        Ok(rid)
    }

    /// §4.2 Update: out-of-place delete + insert.
    pub fn update(&self, vid: Vid, pk: i64, new_values: &[Value]) -> Result<Rid> {
        self.delete(vid, pk)?;
        self.insert(vid, new_values)
    }

    /// Advance the visible watermark (Phase-2 batch commit).
    pub fn advance_visible(&self, vid: Vid) {
        self.visible_vid.fetch_max(vid.get(), Ordering::SeqCst);
    }

    /// Current visible watermark.
    pub fn visible_vid(&self) -> u64 {
        self.visible_vid.load(Ordering::SeqCst)
    }

    /// Open a read snapshot at the current watermark.
    pub fn snapshot(self: &Arc<Self>) -> Snapshot {
        let csn = self.visible_vid();
        *self.active.lock().entry(csn).or_insert(0) += 1;
        Snapshot {
            csn,
            index: self.clone(),
        }
    }

    /// Open a snapshot at an explicit CSN (proxy-selected consistency).
    pub fn snapshot_at(self: &Arc<Self>, csn: u64) -> Snapshot {
        *self.active.lock().entry(csn).or_insert(0) += 1;
        Snapshot {
            csn,
            index: self.clone(),
        }
    }

    /// Oldest CSN any active snapshot reads at (or the watermark when
    /// idle) — the GC horizon for compaction and VID-map dropping.
    pub fn min_active_csn(&self) -> u64 {
        self.active
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.visible_vid())
    }

    /// Row groups (for scans, compaction, checkpointing).
    pub fn groups(&self) -> Vec<Arc<RowGroup>> {
        self.groups.read().clone()
    }

    /// The group holding RIDs `[g*cap, (g+1)*cap)`, growing the group
    /// list if needed (used by writers that pre-allocated RIDs).
    pub fn group_at(&self, g: usize) -> Arc<RowGroup> {
        self.group_for(g)
    }

    /// Install a rebuilt group list (checkpoint load).
    pub fn install_groups(&self, groups: Vec<Arc<RowGroup>>, next_rid: u64) {
        *self.groups.write() = groups;
        self.next_rid.store(next_rid, Ordering::SeqCst);
    }

    /// Bulk-load PK→RID mappings (checkpoint load).
    pub fn install_locator_entries(&self, entries: &[(i64, Rid)]) {
        for (pk, rid) in entries {
            self.locator.insert(*pk, *rid);
        }
        self.locator.freeze();
    }

    /// Highest allocated RID bound.
    pub fn next_rid(&self) -> u64 {
        self.next_rid.load(Ordering::SeqCst)
    }

    /// Total rows ever inserted (statistics).
    pub fn rows_inserted(&self) -> u64 {
        self.rows_inserted.load(Ordering::Relaxed)
    }

    /// Approximate live row count (statistics for the optimizer).
    pub fn approx_live_rows(&self) -> u64 {
        self.rows_inserted
            .load(Ordering::Relaxed)
            .saturating_sub(self.rows_deleted.load(Ordering::Relaxed))
    }

    /// Run the §4.3 insert-map drop optimization over sealed groups;
    /// returns how many maps were dropped.
    pub fn drop_old_insert_maps(&self) -> usize {
        let min_active = self.min_active_csn();
        self.groups
            .read()
            .iter()
            .filter(|g| g.maybe_drop_insert_vids(min_active))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, IndexDef, IndexKind, TableId};

    fn test_schema() -> Schema {
        Schema::new(
            TableId(1),
            "t",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Str),
                ColumnDef::new("c", DataType::Double),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![1, 3], // a and c; pk added implicitly
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn covered_includes_pk_implicitly() {
        let idx = ColumnIndex::for_schema(&test_schema(), 8);
        assert_eq!(idx.covered, vec![0, 1, 3]);
        assert_eq!(idx.pk_pos, 0);
    }

    #[test]
    fn pin_groups_freezes_visibility_per_snapshot() {
        let idx = ColumnIndex::for_schema(&test_schema(), 4);
        for i in 0..10i64 {
            idx.insert(
                Vid(1),
                &[Value::Int(i), Value::Int(i * 2), Value::Double(0.0)],
            )
            .unwrap();
        }
        idx.advance_visible(Vid(1));
        let before = idx.snapshot();
        // Wipe out the first group (rows 0..4) entirely.
        for i in 0..4i64 {
            idx.delete(Vid(2), i).unwrap();
        }
        idx.advance_visible(Vid(2));
        let after = idx.snapshot();
        // The older snapshot still pins all three groups with every row.
        let pinned = before.pin_groups();
        assert_eq!(pinned.len(), 3);
        assert_eq!(pinned.iter().map(|p| p.visible.len()).sum::<usize>(), 10);
        for p in &pinned {
            let offs: Vec<u32> = p.visible.iter().collect();
            let mut sorted = offs.clone();
            sorted.sort_unstable();
            assert_eq!(offs, sorted, "visible offsets must ascend");
        }
        // The newer snapshot skips the fully-deleted group: no empty
        // morsels are ever dispatched.
        let pinned = after.pin_groups();
        assert_eq!(pinned.len(), 2);
        assert_eq!(pinned.iter().map(|p| p.visible.len()).sum::<usize>(), 6);
    }

    #[test]
    fn insert_visible_after_watermark() {
        let idx = ColumnIndex::for_schema(&test_schema(), 8);
        let row = vec![
            Value::Int(1),
            Value::Int(10),
            Value::Str("x".into()),
            Value::Double(0.5),
        ];
        idx.insert(Vid(1), &idx.project_row(&row)).unwrap();
        // Watermark not advanced: snapshot at 0 sees nothing.
        assert!(idx.snapshot().get_by_pk(1).is_none());
        idx.advance_visible(Vid(1));
        let snap = idx.snapshot();
        let got = snap.get_by_pk(1).unwrap();
        assert_eq!(got, vec![Value::Int(1), Value::Int(10), Value::Double(0.5)]);
    }

    #[test]
    fn update_is_out_of_place() {
        let idx = ColumnIndex::for_schema(&test_schema(), 8);
        let mk = |a: i64| vec![Value::Int(1), Value::Int(a), Value::Double(0.0)];
        let rid1 = idx.insert(Vid(1), &mk(10)).unwrap();
        idx.advance_visible(Vid(1));
        let old_snap = idx.snapshot();
        let rid2 = idx.update(Vid(2), 1, &mk(20)).unwrap();
        idx.advance_visible(Vid(2));
        assert_ne!(rid1, rid2, "update appends a new version");
        // New snapshot sees the new version; the pinned old snapshot
        // still sees the old one (MVCC).
        let new_snap = idx.snapshot();
        assert_eq!(new_snap.get_by_pk(1).unwrap()[1], Value::Int(20));
        // Old snapshot: locator now points at the new rid, whose insert
        // vid (2) is beyond csn 1, so the lookup reports no row — but
        // the old version remains physically present for scans.
        let groups = old_snap.groups();
        let (g, off) = idx.rid_pos(rid1);
        assert!(groups[g].visible(off, old_snap.csn));
    }

    #[test]
    fn delete_then_lookup_fails() {
        let idx = ColumnIndex::for_schema(&test_schema(), 8);
        let row = vec![Value::Int(7), Value::Int(1), Value::Double(0.0)];
        idx.insert(Vid(1), &row).unwrap();
        idx.advance_visible(Vid(1));
        idx.delete(Vid(2), 7).unwrap();
        idx.advance_visible(Vid(2));
        assert!(idx.snapshot().get_by_pk(7).is_none());
        assert!(idx.delete(Vid(3), 7).is_err(), "mapping removed");
    }

    #[test]
    fn groups_seal_as_they_fill() {
        let idx = ColumnIndex::for_schema(&test_schema(), 4);
        for pk in 0..10 {
            idx.insert(
                Vid(1),
                &[Value::Int(pk), Value::Int(pk), Value::Double(0.0)],
            )
            .unwrap();
        }
        let groups = idx.groups();
        assert_eq!(groups.len(), 3);
        assert!(groups[0].is_sealed());
        assert!(groups[1].is_sealed());
        assert!(!groups[2].is_sealed(), "partial group stays mutable");
        assert_eq!(groups[2].rows_written(), 2);
    }

    #[test]
    fn precommit_rows_invisible_until_rectified() {
        let idx = ColumnIndex::for_schema(&test_schema(), 8);
        let base = idx.alloc_rids(2);
        idx.insert_precommitted(base, &[Value::Int(1), Value::Int(0), Value::Double(0.0)])
            .unwrap();
        idx.insert_precommitted(
            Rid(base.get() + 1),
            &[Value::Int(2), Value::Int(0), Value::Double(0.0)],
        )
        .unwrap();
        idx.advance_visible(Vid(10));
        assert!(idx.snapshot().get_by_pk(1).is_none());
        // Commit: publish mappings + rectify VIDs.
        idx.publish_mapping(1, base);
        idx.publish_mapping(2, Rid(base.get() + 1));
        idx.rectify_vid(base, Vid(11));
        idx.rectify_vid(Rid(base.get() + 1), Vid(11));
        idx.advance_visible(Vid(11));
        assert!(idx.snapshot().get_by_pk(1).is_some());
        assert!(idx.snapshot().get_by_pk(2).is_some());
    }

    #[test]
    fn min_active_tracks_open_snapshots() {
        let idx = ColumnIndex::for_schema(&test_schema(), 8);
        idx.advance_visible(Vid(10));
        let s1 = idx.snapshot();
        idx.advance_visible(Vid(20));
        let s2 = idx.snapshot();
        assert_eq!(idx.min_active_csn(), 10);
        drop(s1);
        assert_eq!(idx.min_active_csn(), 20);
        drop(s2);
        assert_eq!(idx.min_active_csn(), 20);
    }

    #[test]
    fn insert_map_drop_via_index() {
        let idx = ColumnIndex::for_schema(&test_schema(), 4);
        for pk in 0..4 {
            idx.insert(Vid(1), &[Value::Int(pk), Value::Int(0), Value::Double(0.0)])
                .unwrap();
        }
        idx.advance_visible(Vid(1));
        assert_eq!(idx.drop_old_insert_maps(), 1);
        let snap = idx.snapshot();
        assert!(snap.get_by_pk(0).is_some(), "still visible after drop");
    }
}
