//! Insert / delete Version-ID maps (paper §4.1 "Version Id (VID) Map").
//!
//! Each row group carries two maps: the insert VID map records the
//! commit sequence number that created each row version, the delete VID
//! map the one that logically deleted it (`u64::MAX` = live). A read
//! with snapshot `csn` sees a row iff
//! `insert_vid <= csn && csn < delete_vid`.
//!
//! Rows written by the large-transaction pre-commit path (§5.5) carry
//! [`INVALID_VID`] in the insert map, making them invisible to every
//! snapshot until the commit rectifies them.
//!
//! Memory optimization (§4.3): once a row group is sealed and the oldest
//! active snapshot is newer than every insert VID in it, the insert map
//! is dropped — all rows are trivially "inserted in the past".

use imci_common::Vid;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel meaning "not set / invisible" in the insert map and
/// "not deleted" in the delete map.
pub const VID_UNSET: u64 = u64::MAX;

/// A fixed-capacity array of atomically-updated VIDs.
pub struct VidMap {
    vids: Vec<AtomicU64>,
}

impl VidMap {
    /// Create with all slots unset.
    pub fn new(capacity: usize) -> VidMap {
        let mut vids = Vec::with_capacity(capacity);
        vids.resize_with(capacity, || AtomicU64::new(VID_UNSET));
        VidMap { vids }
    }

    /// Capacity in rows.
    pub fn capacity(&self) -> usize {
        self.vids.len()
    }

    /// Set slot `i` to `vid` (release ordering: pairs with readers'
    /// acquire so a row's column data — written before the VID — is
    /// visible once the VID is).
    #[inline]
    pub fn set(&self, i: usize, vid: Vid) {
        self.vids[i].store(vid.get(), Ordering::Release);
    }

    /// Read slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.vids[i].load(Ordering::Acquire)
    }

    /// Reset slot `i` to unset (abort of a pre-committed large txn).
    pub fn clear(&self, i: usize) {
        self.vids[i].store(VID_UNSET, Ordering::Release);
    }

    /// Largest set VID (None when nothing set).
    pub fn max_set(&self) -> Option<u64> {
        self.vids
            .iter()
            .map(|v| v.load(Ordering::Acquire))
            .filter(|&v| v != VID_UNSET)
            .max()
    }

    /// Copy out raw values (checkpointing).
    pub fn snapshot_raw(&self) -> Vec<u64> {
        self.vids
            .iter()
            .map(|v| v.load(Ordering::Acquire))
            .collect()
    }

    /// Rebuild from raw values (checkpoint load).
    pub fn from_raw(raw: &[u64]) -> VidMap {
        VidMap {
            vids: raw.iter().map(|&v| AtomicU64::new(v)).collect(),
        }
    }
}

/// Visibility test for one row.
///
/// `insert_vid` of [`VID_UNSET`] means "not yet committed-visible"
/// (either mid-append or pre-committed, §5.5); `delete_vid` of
/// [`VID_UNSET`] means live.
#[inline]
pub fn row_visible(insert_vid: u64, delete_vid: u64, csn: u64) -> bool {
    insert_vid != VID_UNSET && insert_vid <= csn && csn < delete_vid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_rows_are_invisible() {
        let m = VidMap::new(4);
        assert!(!row_visible(m.get(0), VID_UNSET, 100));
    }

    #[test]
    fn visibility_window() {
        // Row inserted at vid 10, deleted at vid 20.
        assert!(!row_visible(10, 20, 9));
        assert!(row_visible(10, 20, 10));
        assert!(row_visible(10, 20, 19));
        assert!(!row_visible(10, 20, 20));
        assert!(!row_visible(10, 20, 25));
        // Live row.
        assert!(row_visible(10, VID_UNSET, u64::MAX - 1));
    }

    #[test]
    fn set_get_clear() {
        let m = VidMap::new(8);
        m.set(3, Vid(42));
        assert_eq!(m.get(3), 42);
        assert_eq!(m.max_set(), Some(42));
        m.clear(3);
        assert_eq!(m.get(3), VID_UNSET);
        assert_eq!(m.max_set(), None);
    }

    #[test]
    fn raw_roundtrip() {
        let m = VidMap::new(5);
        m.set(0, Vid(1));
        m.set(4, Vid(9));
        let raw = m.snapshot_raw();
        let m2 = VidMap::from_raw(&raw);
        assert_eq!(m2.get(0), 1);
        assert_eq!(m2.get(1), VID_UNSET);
        assert_eq!(m2.get(4), 9);
        assert_eq!(m2.capacity(), 5);
    }

    #[test]
    fn concurrent_sets_are_safe() {
        use std::sync::Arc;
        let m = Arc::new(VidMap::new(1000));
        let mut hs = Vec::new();
        for t in 0..4 {
            let m = m.clone();
            hs.push(std::thread::spawn(move || {
                for i in (t..1000).step_by(4) {
                    m.set(i, Vid(i as u64));
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        for i in 0..1000 {
            assert_eq!(m.get(i), i as u64);
        }
    }
}
