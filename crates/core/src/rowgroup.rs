//! Row groups: the unit of columnar storage (paper §4.1, Fig. 4).
//!
//! A row group holds up to `capacity` rows across all covered columns.
//! The last group of an index is *partial*: its columns are mutable
//! [`ColumnData`] ("Partial Packs"). When the group fills it is sealed:
//! every column is compressed copy-on-write into an immutable
//! [`Pack`] and the pointer is swapped (§4.3 Compression).
//!
//! Visibility is controlled by the per-group insert/delete VID maps.

use crate::column::ColumnData;
use crate::pack::Pack;
use crate::selvec::SelVec;
use crate::vidmap::{row_visible, VidMap, VID_UNSET};
use imci_common::{DataType, Error, Result, Value, Vid};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// One column's storage within a row group.
pub enum ColumnSlot {
    /// Mutable partial pack.
    Partial(ColumnData),
    /// Sealed compressed pack.
    Sealed(Arc<Pack>),
    /// Physically reclaimed after compaction (§4.3): data gone, slot
    /// kept so RIDs remain stable.
    Reclaimed,
}

/// A row group.
pub struct RowGroup {
    /// Group ordinal within its column index.
    pub id: u32,
    capacity: usize,
    cols: Vec<Mutex<ColumnSlot>>,
    col_types: Vec<DataType>,
    /// Insert VID map; dropped (None) under the §4.3 memory optimization
    /// once no active snapshot can be older than any row in the group.
    insert_vids: RwLock<Option<Arc<VidMap>>>,
    delete_vids: VidMap,
    /// Rows whose columns are fully written.
    written: AtomicUsize,
    sealed: AtomicBool,
    /// All rows deleted and reclaimed.
    reclaimed: AtomicBool,
}

impl RowGroup {
    /// Create an empty (partial) group.
    pub fn new(id: u32, capacity: usize, col_types: &[DataType]) -> RowGroup {
        RowGroup {
            id,
            capacity,
            cols: col_types
                .iter()
                .map(|t| Mutex::new(ColumnSlot::Partial(ColumnData::new(*t))))
                .collect(),
            col_types: col_types.to_vec(),
            insert_vids: RwLock::new(Some(Arc::new(VidMap::new(capacity)))),
            delete_vids: VidMap::new(capacity),
            written: AtomicUsize::new(0),
            sealed: AtomicBool::new(false),
            reclaimed: AtomicBool::new(false),
        }
    }

    /// Row capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column data types.
    pub fn col_types(&self) -> &[DataType] {
        &self.col_types
    }

    /// Whether the group has been sealed (compressed).
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    /// Whether the group's data has been reclaimed.
    pub fn is_reclaimed(&self) -> bool {
        self.reclaimed.load(Ordering::Acquire)
    }

    /// Write all covered column values of one row at `offset`.
    /// The caller owns the slot (RIDs are allocated uniquely), so no two
    /// writers ever target the same offset.
    pub fn write_row(&self, offset: usize, values: &[Value]) -> Result<()> {
        if values.len() != self.cols.len() {
            return Err(Error::Storage(format!(
                "row group {} expects {} columns, got {}",
                self.id,
                self.cols.len(),
                values.len()
            )));
        }
        if offset >= self.capacity {
            return Err(Error::Storage("row offset beyond group capacity".into()));
        }
        for (slot, v) in self.cols.iter().zip(values) {
            let mut s = slot.lock();
            match &mut *s {
                ColumnSlot::Partial(col) => col.set(offset, v)?,
                ColumnSlot::Sealed(_) | ColumnSlot::Reclaimed => {
                    return Err(Error::Storage(format!(
                        "write into sealed row group {}",
                        self.id
                    )))
                }
            }
        }
        self.written.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Stamp the insert VID of `offset` (makes the row visible).
    pub fn set_insert_vid(&self, offset: usize, vid: Vid) {
        if let Some(m) = self.insert_vids.read().as_ref() {
            m.set(offset, vid);
        }
    }

    /// Stamp the delete VID of `offset` (logical delete, out-of-place).
    pub fn set_delete_vid(&self, offset: usize, vid: Vid) {
        self.delete_vids.set(offset, vid);
    }

    /// Clear both VIDs (abort of a pre-committed large transaction).
    pub fn clear_vids(&self, offset: usize) {
        if let Some(m) = self.insert_vids.read().as_ref() {
            m.clear(offset);
        }
        self.delete_vids.clear(offset);
    }

    /// Insert VID of `offset` (0 if the map was dropped: "visible since
    /// forever").
    pub fn insert_vid(&self, offset: usize) -> u64 {
        match self.insert_vids.read().as_ref() {
            Some(m) => m.get(offset),
            None => 0,
        }
    }

    /// Delete VID of `offset` ([`VID_UNSET`] = live).
    pub fn delete_vid(&self, offset: usize) -> u64 {
        self.delete_vids.get(offset)
    }

    /// Is row `offset` visible at snapshot `csn`?
    pub fn visible(&self, offset: usize, csn: u64) -> bool {
        row_visible(self.insert_vid(offset), self.delete_vid(offset), csn)
    }

    /// Offsets of rows visible at `csn` — the scan's initial selection
    /// vector, refined by predicate kernels before any column data is
    /// materialized.
    pub fn visible_offsets(&self, csn: u64) -> SelVec {
        if self.reclaimed.load(Ordering::Acquire) {
            return SelVec::new();
        }
        let n = self.rows_written();
        let mut out = Vec::with_capacity(n);
        match self.insert_vids.read().as_ref() {
            Some(m) => {
                for i in 0..n {
                    if row_visible(m.get(i), self.delete_vids.get(i), csn) {
                        out.push(i as u32);
                    }
                }
            }
            None => {
                for i in 0..n {
                    if csn < self.delete_vids.get(i) {
                        out.push(i as u32);
                    }
                }
            }
        }
        SelVec::from_sorted(out)
    }

    /// Number of rows fully written so far.
    pub fn rows_written(&self) -> usize {
        self.written.load(Ordering::Acquire).min(self.capacity)
    }

    /// Live (not logically deleted) row count.
    pub fn live_rows(&self) -> usize {
        let n = self.rows_written();
        (0..n)
            .filter(|&i| self.delete_vids.get(i) == VID_UNSET && self.insert_vid(i) != VID_UNSET)
            .count()
    }

    /// Read one value.
    pub fn value_at(&self, col: usize, offset: usize) -> Value {
        let s = self.cols[col].lock();
        match &*s {
            ColumnSlot::Partial(c) => c.get(offset),
            ColumnSlot::Sealed(p) => p.get(offset),
            ColumnSlot::Reclaimed => Value::Null,
        }
    }

    /// Materialize a column for scanning: cheap `Arc` clone when sealed,
    /// copy when partial.
    pub fn read_column(&self, col: usize) -> ColumnRead {
        let s = self.cols[col].lock();
        match &*s {
            ColumnSlot::Partial(c) => ColumnRead::Materialized(c.clone()),
            ColumnSlot::Sealed(p) => ColumnRead::Pack(p.clone()),
            ColumnSlot::Reclaimed => ColumnRead::Materialized(ColumnData::new(self.col_types[col])),
        }
    }

    /// The sealed pack of a column, if sealed (for min/max pruning).
    pub fn column_pack(&self, col: usize) -> Option<Arc<Pack>> {
        let s = self.cols[col].lock();
        match &*s {
            ColumnSlot::Sealed(p) => Some(p.clone()),
            _ => None,
        }
    }

    /// Seal the group if every slot has been written: compress each
    /// column copy-on-write and swap the pointer (§4.3). Returns true if
    /// this call performed the seal.
    pub fn seal_if_full(&self) -> bool {
        if self.written.load(Ordering::Acquire) < self.capacity {
            return false;
        }
        if self.sealed.swap(true, Ordering::AcqRel) {
            return false;
        }
        for slot in &self.cols {
            // Compress outside the lock (copy-on-write), then swap.
            let source = {
                let s = slot.lock();
                match &*s {
                    ColumnSlot::Partial(c) => c.clone(),
                    _ => continue,
                }
            };
            let pack = Arc::new(Pack::seal(&source));
            *slot.lock() = ColumnSlot::Sealed(pack);
        }
        true
    }

    /// §4.3 memory optimization: drop the insert VID map once no active
    /// snapshot (`min_active`) predates any insert in a sealed group.
    pub fn maybe_drop_insert_vids(&self, min_active: u64) -> bool {
        if !self.is_sealed() {
            return false;
        }
        let drop_it = {
            let g = self.insert_vids.read();
            match g.as_ref() {
                None => return false,
                Some(m) => {
                    // Every slot must be committed (set) and old enough.
                    let n = self.rows_written();
                    (0..n).all(|i| {
                        let v = m.get(i);
                        v != VID_UNSET && v <= min_active
                    }) && n == self.capacity
                }
            }
        };
        if drop_it {
            *self.insert_vids.write() = None;
        }
        drop_it
    }

    /// Physically reclaim a fully-dead group (every row deleted before
    /// `min_active`). Returns true on reclamation.
    pub fn try_reclaim(&self, min_active: u64) -> bool {
        if self.reclaimed.load(Ordering::Acquire) || !self.is_sealed() {
            return false;
        }
        let n = self.rows_written();
        // A snapshot at csn sees rows with delete_vid > csn; a row
        // deleted at min_active is already invisible to every active
        // snapshot, so `<=` is the exact safety bound.
        let all_dead = (0..n).all(|i| {
            let d = self.delete_vids.get(i);
            d != VID_UNSET && d <= min_active
        });
        if !all_dead || n == 0 {
            return false;
        }
        for slot in &self.cols {
            *slot.lock() = ColumnSlot::Reclaimed;
        }
        self.reclaimed.store(true, Ordering::Release);
        true
    }

    /// Whether the insert VID map is still held (tests).
    pub fn has_insert_vids(&self) -> bool {
        self.insert_vids.read().is_some()
    }

    /// Raw VID maps for checkpointing: `(insert, delete)`; entries with
    /// VID > `csn` are masked per paper §7.
    pub fn checkpoint_vids(&self, csn: u64) -> (Vec<u64>, Vec<u64>) {
        let ins = match self.insert_vids.read().as_ref() {
            Some(m) => m
                .snapshot_raw()
                .into_iter()
                .map(|v| {
                    if v != VID_UNSET && v > csn {
                        VID_UNSET
                    } else {
                        v
                    }
                })
                .collect(),
            None => vec![0; self.capacity],
        };
        let del = self
            .delete_vids
            .snapshot_raw()
            .into_iter()
            .map(|v| {
                if v != VID_UNSET && v > csn {
                    VID_UNSET
                } else {
                    v
                }
            })
            .collect();
        (ins, del)
    }

    /// Rebuild a group from checkpoint state.
    #[allow(clippy::too_many_arguments)]
    pub fn from_checkpoint(
        id: u32,
        capacity: usize,
        col_types: &[DataType],
        columns: Vec<ColumnSlot>,
        insert_raw: &[u64],
        delete_raw: &[u64],
        sealed: bool,
        written: usize,
    ) -> RowGroup {
        RowGroup {
            id,
            capacity,
            cols: columns.into_iter().map(Mutex::new).collect(),
            col_types: col_types.to_vec(),
            insert_vids: RwLock::new(Some(Arc::new(VidMap::from_raw(insert_raw)))),
            delete_vids: VidMap::from_raw(delete_raw),
            written: AtomicUsize::new(written),
            sealed: AtomicBool::new(sealed),
            reclaimed: AtomicBool::new(false),
        }
    }
}

/// Result of [`RowGroup::read_column`].
pub enum ColumnRead {
    /// Sealed pack (zero-copy).
    Pack(Arc<Pack>),
    /// Copied partial column.
    Materialized(ColumnData),
}

impl ColumnRead {
    /// Value at `offset`.
    pub fn get(&self, offset: usize) -> Value {
        match self {
            ColumnRead::Pack(p) => p.get(offset),
            ColumnRead::Materialized(c) => c.get(offset),
        }
    }

    /// Length in rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnRead::Pack(p) => p.len(),
            ColumnRead::Materialized(c) => c.len(),
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gather rows at `idx` into a typed column (late materialization's
    /// single post-filter gather).
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        match self {
            ColumnRead::Pack(p) => p.gather(idx),
            ColumnRead::Materialized(c) => c.gather(idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn types() -> Vec<DataType> {
        vec![DataType::Int, DataType::Str]
    }

    #[test]
    fn write_stamp_read() {
        let g = RowGroup::new(0, 8, &types());
        g.write_row(0, &[Value::Int(1), Value::Str("a".into())])
            .unwrap();
        g.set_insert_vid(0, Vid(5));
        assert!(g.visible(0, 5));
        assert!(!g.visible(0, 4));
        assert_eq!(g.value_at(0, 0), Value::Int(1));
        assert_eq!(g.value_at(1, 0), Value::Str("a".into()));
    }

    #[test]
    fn unstamped_rows_invisible() {
        let g = RowGroup::new(0, 8, &types());
        g.write_row(0, &[Value::Int(1), Value::Null]).unwrap();
        assert!(!g.visible(0, u64::MAX - 1));
        assert!(g.visible_offsets(100).is_empty());
    }

    #[test]
    fn delete_hides_from_later_snapshots_only() {
        let g = RowGroup::new(0, 8, &types());
        g.write_row(0, &[Value::Int(1), Value::Null]).unwrap();
        g.set_insert_vid(0, Vid(5));
        g.set_delete_vid(0, Vid(10));
        assert!(g.visible(0, 9), "old snapshot still sees the row");
        assert!(!g.visible(0, 10));
        assert_eq!(g.live_rows(), 0);
    }

    #[test]
    fn seal_preserves_data_and_blocks_writes() {
        let cap = 16;
        let g = RowGroup::new(0, cap, &types());
        for i in 0..cap {
            g.write_row(i, &[Value::Int(i as i64), Value::Str(format!("s{i}"))])
                .unwrap();
            g.set_insert_vid(i, Vid(1));
        }
        assert!(g.seal_if_full());
        assert!(!g.seal_if_full(), "second seal is a no-op");
        assert!(g.is_sealed());
        for i in 0..cap {
            assert_eq!(g.value_at(0, i), Value::Int(i as i64));
        }
        assert!(g.write_row(0, &[Value::Int(0), Value::Null]).is_err());
        assert!(g.column_pack(0).is_some());
    }

    #[test]
    fn seal_requires_all_rows_written() {
        let g = RowGroup::new(0, 4, &types());
        g.write_row(0, &[Value::Int(1), Value::Null]).unwrap();
        assert!(!g.seal_if_full());
    }

    #[test]
    fn insert_vid_map_drop_optimization() {
        let cap = 4;
        let g = RowGroup::new(0, cap, &types());
        for i in 0..cap {
            g.write_row(i, &[Value::Int(i as i64), Value::Null])
                .unwrap();
            g.set_insert_vid(i, Vid(3));
        }
        g.seal_if_full();
        assert!(!g.maybe_drop_insert_vids(2), "active snapshot too old");
        assert!(g.maybe_drop_insert_vids(3));
        assert!(!g.has_insert_vids());
        // Rows remain visible after the drop.
        assert!(g.visible(0, 100));
        assert_eq!(g.visible_offsets(100).len(), 4);
    }

    #[test]
    fn reclaim_fully_dead_group() {
        let cap = 4;
        let g = RowGroup::new(0, cap, &types());
        for i in 0..cap {
            g.write_row(i, &[Value::Int(0), Value::Null]).unwrap();
            g.set_insert_vid(i, Vid(1));
            g.set_delete_vid(i, Vid(2));
        }
        g.seal_if_full();
        assert!(!g.try_reclaim(1), "snapshot at 1 still sees the rows");
        assert!(g.try_reclaim(2), "deleted at 2 is invisible at csn 2");
        assert!(g.is_reclaimed());
        assert!(g.visible_offsets(1).is_empty());
    }

    #[test]
    fn checkpoint_vid_masking() {
        let g = RowGroup::new(0, 4, &types());
        g.write_row(0, &[Value::Int(1), Value::Null]).unwrap();
        g.set_insert_vid(0, Vid(5));
        g.write_row(1, &[Value::Int(2), Value::Null]).unwrap();
        g.set_insert_vid(1, Vid(15)); // after the checkpoint CSN
        g.set_delete_vid(0, Vid(20)); // delete after CSN
        let (ins, del) = g.checkpoint_vids(10);
        assert_eq!(ins[0], 5);
        assert_eq!(ins[1], VID_UNSET, "post-CSN insert masked");
        assert_eq!(del[0], VID_UNSET, "post-CSN delete masked");
    }
}
