//! The RID locator: a two-layer LSM tree mapping primary keys to RIDs
//! (paper §4.1 "RID Locator").
//!
//! Layer 1 is a mutable memtable; layer 2 is a list of immutable sorted
//! runs, newest first. Deletes are tombstones. When the memtable fills
//! it is frozen into a run; when runs accumulate they are merged into a
//! single base run (dropping tombstones — the two-layer shape of the
//! paper).
//!
//! Checkpointing (paper §7) snapshots the locator by freezing the
//! memtable and cloning the run list — runs are immutable `Arc`s, so the
//! snapshot is O(1) and "subsequent transactions will not stain the
//! checkpoint" (the functional-data-structure trick the paper cites).
//! The paper's rule that checkpoints are "only triggered when the
//! MemTable is filled" corresponds to snapshots always freezing first.

use imci_common::Rid;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An immutable sorted run; `None` = tombstone.
#[derive(Debug)]
pub struct Run {
    entries: Vec<(i64, Option<Rid>)>,
}

impl Run {
    fn get(&self, pk: i64) -> Option<Option<Rid>> {
        self.entries
            .binary_search_by_key(&pk, |(k, _)| *k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of entries (incl. tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the run holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A consistent point-in-time view of the locator.
#[derive(Clone)]
pub struct LocatorSnapshot {
    runs: Arc<Vec<Arc<Run>>>,
}

impl LocatorSnapshot {
    /// Look up a pk in the snapshot.
    pub fn get(&self, pk: i64) -> Option<Rid> {
        for run in self.runs.iter() {
            if let Some(v) = run.get(pk) {
                return v;
            }
        }
        None
    }

    /// Iterate live `(pk, rid)` pairs (newest version wins).
    pub fn iter_live(&self) -> Vec<(i64, Rid)> {
        let mut seen = imci_common::FxHashSet::default();
        let mut out = Vec::new();
        for run in self.runs.iter() {
            for (pk, rid) in &run.entries {
                if seen.insert(*pk) {
                    if let Some(r) = rid {
                        out.push((*pk, *r));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|(pk, _)| *pk);
        out
    }

    /// Serialize (checkpointing).
    pub fn encode(&self) -> Vec<u8> {
        let live = self.iter_live();
        let mut out = Vec::with_capacity(live.len() * 16 + 8);
        out.extend_from_slice(&(live.len() as u64).to_le_bytes());
        for (pk, rid) in live {
            out.extend_from_slice(&pk.to_le_bytes());
            out.extend_from_slice(&rid.get().to_le_bytes());
        }
        out
    }
}

/// The two-layer LSM locator.
pub struct RidLocator {
    memtable: RwLock<BTreeMap<i64, Option<Rid>>>,
    runs: RwLock<Arc<Vec<Arc<Run>>>>,
    memtable_cap: usize,
    /// Merge the run list down to one base run past this many runs.
    max_runs: usize,
}

impl RidLocator {
    /// Create with the given memtable capacity.
    pub fn new(memtable_cap: usize) -> RidLocator {
        RidLocator {
            memtable: RwLock::new(BTreeMap::new()),
            runs: RwLock::new(Arc::new(Vec::new())),
            memtable_cap: memtable_cap.max(16),
            max_runs: 4,
        }
    }

    /// Map `pk` to `rid` (insert or overwrite).
    pub fn insert(&self, pk: i64, rid: Rid) {
        let freeze = {
            let mut mt = self.memtable.write();
            mt.insert(pk, Some(rid));
            mt.len() >= self.memtable_cap
        };
        if freeze {
            self.freeze();
        }
    }

    /// Remove the mapping for `pk` ("the mapping between the PK and RID
    /// is removed from the locator", §4.2 Delete).
    pub fn remove(&self, pk: i64) {
        let freeze = {
            let mut mt = self.memtable.write();
            mt.insert(pk, None);
            mt.len() >= self.memtable_cap
        };
        if freeze {
            self.freeze();
        }
    }

    /// Look up the RID for `pk`.
    pub fn get(&self, pk: i64) -> Option<Rid> {
        {
            let mt = self.memtable.read();
            if let Some(v) = mt.get(&pk) {
                return *v;
            }
        }
        let runs = self.runs.read().clone();
        for run in runs.iter() {
            if let Some(v) = run.get(pk) {
                return v;
            }
        }
        None
    }

    /// Freeze the memtable into an immutable run.
    pub fn freeze(&self) {
        let mut mt = self.memtable.write();
        if mt.is_empty() {
            return;
        }
        let entries: Vec<(i64, Option<Rid>)> = std::mem::take(&mut *mt).into_iter().collect();
        drop(mt);
        let mut runs = self.runs.write();
        let mut list: Vec<Arc<Run>> = (**runs).clone();
        list.insert(0, Arc::new(Run { entries }));
        if list.len() > self.max_runs {
            list = vec![Arc::new(Self::merge(&list))];
        }
        *runs = Arc::new(list);
    }

    fn merge(runs: &[Arc<Run>]) -> Run {
        // Newest-first list: first occurrence of a pk wins; tombstones
        // are dropped in the merged base run.
        let mut map: BTreeMap<i64, Option<Rid>> = BTreeMap::new();
        for run in runs {
            for (pk, rid) in &run.entries {
                map.entry(*pk).or_insert(*rid);
            }
        }
        Run {
            entries: map.into_iter().filter(|(_, rid)| rid.is_some()).collect(),
        }
    }

    /// O(1)-ish consistent snapshot: freeze, then clone the run list.
    pub fn snapshot(&self) -> LocatorSnapshot {
        self.freeze();
        LocatorSnapshot {
            runs: self.runs.read().clone(),
        }
    }

    /// Rebuild from a serialized snapshot.
    pub fn decode(bytes: &[u8], memtable_cap: usize) -> imci_common::Result<RidLocator> {
        if bytes.len() < 8 {
            return Err(imci_common::Error::Storage(
                "locator snapshot truncated".into(),
            ));
        }
        let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        if bytes.len() < 8 + n * 16 {
            return Err(imci_common::Error::Storage(
                "locator snapshot truncated".into(),
            ));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let off = 8 + i * 16;
            let pk = i64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let rid = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            entries.push((pk, Some(Rid(rid))));
        }
        let loc = RidLocator::new(memtable_cap);
        *loc.runs.write() = Arc::new(vec![Arc::new(Run { entries })]);
        Ok(loc)
    }

    /// Approximate number of live mappings.
    pub fn approx_len(&self) -> usize {
        let mt = self.memtable.read().len();
        let runs: usize = self.runs.read().iter().map(|r| r.len()).sum();
        mt + runs
    }

    /// Number of immutable runs (tests / stats).
    pub fn run_count(&self) -> usize {
        self.runs.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let l = RidLocator::new(1024);
        l.insert(10, Rid(1));
        l.insert(20, Rid(2));
        assert_eq!(l.get(10), Some(Rid(1)));
        assert_eq!(l.get(20), Some(Rid(2)));
        assert_eq!(l.get(30), None);
        l.remove(10);
        assert_eq!(l.get(10), None);
    }

    #[test]
    fn freeze_preserves_lookups_and_tombstones() {
        let l = RidLocator::new(1024);
        for pk in 0..100 {
            l.insert(pk, Rid(pk as u64));
        }
        l.remove(50);
        l.freeze();
        assert_eq!(l.get(49), Some(Rid(49)));
        assert_eq!(l.get(50), None, "tombstone survives freeze");
        // Newer layer shadows older.
        l.insert(49, Rid(999));
        assert_eq!(l.get(49), Some(Rid(999)));
    }

    #[test]
    fn memtable_cap_triggers_freeze_and_merge() {
        let l = RidLocator::new(16);
        for pk in 0..200 {
            l.insert(pk, Rid(pk as u64));
        }
        assert!(l.run_count() >= 1);
        assert!(l.run_count() <= 4, "runs merge down to the two-layer shape");
        for pk in 0..200 {
            assert_eq!(l.get(pk), Some(Rid(pk as u64)));
        }
    }

    #[test]
    fn snapshot_is_immune_to_later_writes() {
        let l = RidLocator::new(1024);
        for pk in 0..50 {
            l.insert(pk, Rid(pk as u64));
        }
        let snap = l.snapshot();
        l.insert(7, Rid(777));
        l.remove(8);
        l.insert(1000, Rid(1));
        assert_eq!(snap.get(7), Some(Rid(7)), "snapshot sees old mapping");
        assert_eq!(snap.get(8), Some(Rid(8)));
        assert_eq!(snap.get(1000), None);
        assert_eq!(l.get(7), Some(Rid(777)), "live locator sees new mapping");
    }

    #[test]
    fn snapshot_codec_roundtrip() {
        let l = RidLocator::new(64);
        for pk in (0..500).step_by(3) {
            l.insert(pk, Rid(pk as u64 * 2));
        }
        l.remove(3);
        let snap = l.snapshot();
        let restored = RidLocator::decode(&snap.encode(), 64).unwrap();
        assert_eq!(restored.get(0), Some(Rid(0)));
        assert_eq!(restored.get(3), None);
        assert_eq!(restored.get(498), Some(Rid(996)));
        assert_eq!(restored.get(499), None);
    }

    #[test]
    fn iter_live_respects_latest_versions() {
        let l = RidLocator::new(8); // tiny: force lots of runs
        for pk in 0..40 {
            l.insert(pk, Rid(pk as u64));
        }
        for pk in 0..10 {
            l.insert(pk, Rid(1000 + pk as u64)); // re-point
        }
        l.remove(39);
        let live = l.snapshot().iter_live();
        assert_eq!(live.len(), 39);
        assert!(live.contains(&(0, Rid(1000))));
        assert!(live.contains(&(38, Rid(38))));
        assert!(!live.iter().any(|(pk, _)| *pk == 39));
    }

    #[test]
    fn concurrent_access_smoke() {
        let l = Arc::new(RidLocator::new(128));
        let mut hs = Vec::new();
        for t in 0..4i64 {
            let l = l.clone();
            hs.push(std::thread::spawn(move || {
                for i in 0..1000i64 {
                    let pk = t * 1000 + i;
                    l.insert(pk, Rid(pk as u64));
                    assert_eq!(l.get(pk), Some(Rid(pk as u64)));
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(l.get(3999), Some(Rid(3999)));
    }
}
