//! Column store: the set of column indexes living on one RO node.

use crate::index::ColumnIndex;
use imci_common::{Error, FxHashMap, Result, Schema, TableId};
use parking_lot::RwLock;
use std::sync::Arc;

/// All column indexes of one node, keyed by table.
#[derive(Default)]
pub struct ColumnStore {
    indexes: RwLock<FxHashMap<TableId, Arc<ColumnIndex>>>,
    group_cap: usize,
}

impl ColumnStore {
    /// Create a store whose indexes use `group_cap`-row groups.
    pub fn new(group_cap: usize) -> ColumnStore {
        ColumnStore {
            indexes: RwLock::new(FxHashMap::default()),
            group_cap,
        }
    }

    /// Row-group capacity used for new indexes.
    pub fn group_capacity(&self) -> usize {
        self.group_cap
    }

    /// Create (or return the existing) column index for a table.
    pub fn create_index(&self, schema: &Schema) -> Arc<ColumnIndex> {
        if let Some(idx) = self.indexes.read().get(&schema.table_id) {
            return idx.clone();
        }
        let idx = ColumnIndex::for_schema(schema, self.group_cap);
        self.indexes.write().insert(schema.table_id, idx.clone());
        idx
    }

    /// Install a pre-built index (checkpoint load / ALTER build).
    pub fn install(&self, index: Arc<ColumnIndex>) {
        self.indexes.write().insert(index.table_id, index);
    }

    /// Remove a table's index (DROP TABLE replay). In-flight snapshots
    /// keep their `Arc` and finish; new lookups fail. Idempotent.
    pub fn remove_index(&self, table: TableId) -> Option<Arc<ColumnIndex>> {
        self.indexes.write().remove(&table)
    }

    /// Look up a table's index.
    pub fn index(&self, table: TableId) -> Result<Arc<ColumnIndex>> {
        self.indexes
            .read()
            .get(&table)
            .cloned()
            .ok_or_else(|| Error::Storage(format!("no column index for table {table}")))
    }

    /// Whether a table has a column index.
    pub fn has_index(&self, table: TableId) -> bool {
        self.indexes.read().contains_key(&table)
    }

    /// All indexes (checkpointing).
    pub fn all(&self) -> Vec<Arc<ColumnIndex>> {
        self.indexes.read().values().cloned().collect()
    }

    /// Advance every index's visible watermark (Phase-2 batch commit
    /// publishes one global commit point).
    pub fn advance_all(&self, vid: imci_common::Vid) {
        for idx in self.indexes.read().values() {
            idx.advance_visible(vid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Value, Vid};

    fn schema(id: u64) -> Schema {
        Schema::new(
            TableId(id),
            format!("t{id}"),
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn create_is_idempotent() {
        let store = ColumnStore::new(16);
        let a = store.create_index(&schema(1));
        let b = store.create_index(&schema(1));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(store.has_index(TableId(1)));
        assert!(!store.has_index(TableId(2)));
        assert!(store.index(TableId(2)).is_err());
    }

    #[test]
    fn advance_all_moves_watermarks() {
        let store = ColumnStore::new(16);
        let a = store.create_index(&schema(1));
        let b = store.create_index(&schema(2));
        a.insert(Vid(5), &[Value::Int(1), Value::Int(1)]).unwrap();
        b.insert(Vid(5), &[Value::Int(1), Value::Int(2)]).unwrap();
        store.advance_all(Vid(5));
        assert_eq!(a.visible_vid(), 5);
        assert_eq!(b.visible_vid(), 5);
        assert!(a.snapshot().get_by_pk(1).is_some());
    }
}
