//! Column-index checkpoints on shared storage (paper §7).
//!
//! A checkpoint is a named set of objects under `ckpt/<seq>/...`:
//!
//! * `meta` — CSN, redo-cursor offset, group layout, next RID;
//! * `t<table>/g<gid>/c<col>` — each column of each group, stored as an
//!   encoded [`Pack`] (partial packs are sealed copy-on-write for the
//!   snapshot — the live group is untouched);
//! * `t<table>/g<gid>/vids` — insert/delete VID maps, masked at the CSN
//!   ("if VIDs exceed the CSN, the elements will be marked as invalid");
//! * `t<table>/locator` — the RID locator snapshot (immutable-run clone).
//!
//! New RO nodes load the newest checkpoint and replay the REDO suffix
//! from the recorded cursor — the tens-of-seconds scale-out of Fig. 14.

use crate::index::ColumnIndex;
use crate::locator::RidLocator;
use crate::pack::Pack;
use crate::rowgroup::{ColumnSlot, RowGroup};
use bytes::Bytes;
use imci_common::{Error, Result, Rid, Schema, TableId};
use polarfs_sim::PolarFs;
use std::sync::Arc;

/// Checkpoint descriptor (parsed `meta` object).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Checkpoint sequence number (a committed VID; §7).
    pub csn: u64,
    /// REDO byte offset to resume replay from.
    pub redo_offset: u64,
    /// Per-table group layout: (table, group count, next_rid, rows
    /// written in the last partial group).
    pub tables: Vec<CkptTable>,
}

/// Per-table layout inside a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptTable {
    /// Table id.
    pub table_id: TableId,
    /// Number of row groups captured.
    pub n_groups: u32,
    /// RID allocation high-water mark.
    pub next_rid: u64,
    /// Sealed flags per group.
    pub sealed: Vec<bool>,
    /// Rows written per group.
    pub written: Vec<u32>,
}

fn prefix(seq: u64) -> String {
    format!("ckpt/{seq:012}/")
}

/// Object key of checkpoint `seq`'s catalog snapshot (written by the
/// checkpointing replayer, read at node bring-up). The snapshot embeds
/// the catalog version so DDL records after the checkpoint's redo
/// cursor apply exactly once.
pub fn ckpt_catalog_key(seq: u64) -> String {
    format!("{}catalog", prefix(seq))
}

/// Object-key prefix of checkpoint `seq`'s row-page images (written by
/// the checkpointing replayer; read by scale-out and RW crash
/// recovery).
pub fn ckpt_rowpages_prefix(seq: u64) -> String {
    format!("{}rowpages/", prefix(seq))
}

/// Write a checkpoint of `indexes` at `csn` / `redo_offset`.
///
/// Caller must quiesce Phase-2 appliers first so that the visible state
/// equals `csn` exactly (the cluster checkpoints at batch boundaries).
pub fn write_checkpoint(
    fs: &PolarFs,
    seq: u64,
    csn: u64,
    redo_offset: u64,
    indexes: &[Arc<ColumnIndex>],
) -> Result<()> {
    let p = prefix(seq);
    let mut meta = String::new();
    meta.push_str(&format!("csn\t{csn}\nredo\t{redo_offset}\n"));
    for index in indexes {
        let groups = index.groups();
        meta.push_str(&format!(
            "table\t{}\t{}\t{}\t",
            index.table_id.get(),
            groups.len(),
            index.next_rid()
        ));
        let sealed: Vec<String> = groups
            .iter()
            .map(|g| {
                if g.is_sealed() {
                    "1".into()
                } else {
                    "0".into()
                }
            })
            .collect();
        meta.push_str(&sealed.join(","));
        meta.push('\t');
        let written: Vec<String> = groups
            .iter()
            .map(|g| g.rows_written().to_string())
            .collect();
        meta.push_str(&written.join(","));
        meta.push('\n');

        for g in &groups {
            // Packs are immutable once sealed; partial groups are sealed
            // copy-on-write just for the snapshot.
            for c in 0..g.width() {
                let pack = match g.column_pack(c) {
                    Some(p) => p,
                    None => {
                        let col = match g.read_column(c) {
                            crate::rowgroup::ColumnRead::Materialized(col) => col,
                            crate::rowgroup::ColumnRead::Pack(p) => {
                                Arc::new(Pack::clone(&p));
                                continue;
                            }
                        };
                        Arc::new(Pack::seal(&col))
                    }
                };
                fs.put_object(
                    &format!("{p}t{}/g{}/c{}", index.table_id.get(), g.id, c),
                    Bytes::from(pack.encode()),
                );
            }
            let (ins, del) = g.checkpoint_vids(csn);
            let mut vbytes = Vec::with_capacity(16 + ins.len() * 8 + del.len() * 8);
            vbytes.extend_from_slice(&(ins.len() as u64).to_le_bytes());
            for v in &ins {
                vbytes.extend_from_slice(&v.to_le_bytes());
            }
            vbytes.extend_from_slice(&(del.len() as u64).to_le_bytes());
            for v in &del {
                vbytes.extend_from_slice(&v.to_le_bytes());
            }
            fs.put_object(
                &format!("{p}t{}/g{}/vids", index.table_id.get(), g.id),
                Bytes::from(vbytes),
            );
        }
        let snap = index.locator().snapshot();
        fs.put_object(
            &format!("{p}t{}/locator", index.table_id.get()),
            Bytes::from(snap.encode()),
        );
    }
    // Meta written last: its presence marks the checkpoint complete.
    fs.put_object(&format!("{p}meta"), Bytes::from(meta));
    Ok(())
}

/// Sequence number of the newest complete checkpoint, if any.
pub fn latest_checkpoint(fs: &PolarFs) -> Option<u64> {
    fs.list_objects("ckpt/")
        .into_iter()
        .filter(|k| k.ends_with("/meta"))
        .filter_map(|k| k.split('/').nth(1).and_then(|s| s.parse::<u64>().ok()))
        .max()
}

/// Parse a checkpoint's `meta` object.
pub fn read_meta(fs: &PolarFs, seq: u64) -> Result<CheckpointMeta> {
    let bytes = fs.get_object(&format!("{}meta", prefix(seq)))?;
    let text =
        std::str::from_utf8(&bytes).map_err(|e| Error::Storage(format!("ckpt meta utf8: {e}")))?;
    let mut csn = 0;
    let mut redo_offset = 0;
    let mut tables = Vec::new();
    for line in text.lines() {
        let f: Vec<&str> = line.split('\t').collect();
        match f[0] {
            "csn" => csn = f[1].parse().unwrap_or(0),
            "redo" => redo_offset = f[1].parse().unwrap_or(0),
            "table" => {
                let sealed = if f[4].is_empty() {
                    Vec::new()
                } else {
                    f[4].split(',').map(|s| s == "1").collect()
                };
                let written = if f[5].is_empty() {
                    Vec::new()
                } else {
                    f[5].split(',').map(|s| s.parse().unwrap_or(0)).collect()
                };
                tables.push(CkptTable {
                    table_id: TableId(f[1].parse().unwrap_or(0)),
                    n_groups: f[2].parse().unwrap_or(0),
                    next_rid: f[3].parse().unwrap_or(0),
                    sealed,
                    written,
                });
            }
            _ => {}
        }
    }
    Ok(CheckpointMeta {
        csn,
        redo_offset,
        tables,
    })
}

/// Load one table's column index from checkpoint `seq`.
pub fn load_index(
    fs: &PolarFs,
    seq: u64,
    schema: &Schema,
    group_cap: usize,
) -> Result<Arc<ColumnIndex>> {
    let meta = read_meta(fs, seq)?;
    let t = meta
        .tables
        .iter()
        .find(|t| t.table_id == schema.table_id)
        .ok_or_else(|| {
            Error::Storage(format!("checkpoint {seq} has no table {}", schema.table_id))
        })?;
    let p = prefix(seq);
    let index = ColumnIndex::for_schema(schema, group_cap);
    let mut groups = Vec::with_capacity(t.n_groups as usize);
    for gid in 0..t.n_groups {
        let mut slots = Vec::with_capacity(index.covered.len());
        let sealed = t.sealed.get(gid as usize).copied().unwrap_or(false);
        for c in 0..index.covered.len() {
            let key = format!("{p}t{}/g{}/c{}", schema.table_id.get(), gid, c);
            let pack = Pack::decode_bytes(&fs.get_object(&key)?)?;
            if sealed {
                slots.push(ColumnSlot::Sealed(Arc::new(pack)));
            } else {
                // Partial groups go back to mutable form.
                slots.push(ColumnSlot::Partial(pack.decode()));
            }
        }
        let vbytes = fs.get_object(&format!("{p}t{}/g{}/vids", schema.table_id.get(), gid))?;
        let (ins, del) = decode_vids(&vbytes)?;
        groups.push(Arc::new(RowGroup::from_checkpoint(
            gid,
            group_cap,
            &index.col_types,
            slots,
            &ins,
            &del,
            sealed,
            t.written.get(gid as usize).copied().unwrap_or(0) as usize,
        )));
    }
    index.install_groups(groups, t.next_rid);
    let lbytes = fs.get_object(&format!("{p}t{}/locator", schema.table_id.get()))?;
    let loc = RidLocator::decode(&lbytes, 64 * 1024)?;
    let entries: Vec<(i64, Rid)> = loc.snapshot().iter_live();
    index.install_locator_entries(&entries);
    index.advance_visible(imci_common::Vid(meta.csn));
    Ok(index)
}

fn decode_vids(bytes: &[u8]) -> Result<(Vec<u64>, Vec<u64>)> {
    let err = || Error::Storage("vid map truncated".into());
    if bytes.len() < 8 {
        return Err(err());
    }
    let n1 = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    let mut pos = 8;
    if bytes.len() < pos + n1 * 8 + 8 {
        return Err(err());
    }
    let mut ins = Vec::with_capacity(n1);
    for _ in 0..n1 {
        ins.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()));
        pos += 8;
    }
    let n2 = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
    pos += 8;
    if bytes.len() < pos + n2 * 8 {
        return Err(err());
    }
    let mut del = Vec::with_capacity(n2);
    for _ in 0..n2 {
        del.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()));
        pos += 8;
    }
    Ok((ins, del))
}

/// Build a fresh column index by scanning base data (the cold path of
/// scale-out / `ALTER TABLE ADD COLUMN INDEX`, §3.3): rows arrive in PK
/// order from the row store and are bulk-appended at `vid`.
pub fn build_from_rows(
    schema: &Schema,
    group_cap: usize,
    vid: imci_common::Vid,
    rows: impl Iterator<Item = Vec<imci_common::Value>>,
) -> Result<Arc<ColumnIndex>> {
    let index = ColumnIndex::for_schema(schema, group_cap);
    for full_row in rows {
        let projected = index.project_row(&full_row);
        index.insert(vid, &projected)?;
    }
    index.advance_visible(vid);
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Value, Vid};

    fn schema() -> Schema {
        Schema::new(
            TableId(3),
            "t",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
                ColumnDef::new("s", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1, 2],
                },
            ],
        )
        .unwrap()
    }

    fn populated_index() -> Arc<ColumnIndex> {
        let idx = ColumnIndex::for_schema(&schema(), 8);
        for pk in 0..20i64 {
            idx.insert(
                Vid(pk as u64 + 1),
                &[
                    Value::Int(pk),
                    Value::Int(pk * 2),
                    Value::Str(format!("s{pk}")),
                ],
            )
            .unwrap();
        }
        idx.advance_visible(Vid(20));
        idx.delete(Vid(21), 5).unwrap();
        idx.advance_visible(Vid(21));
        idx
    }

    #[test]
    fn checkpoint_roundtrip() {
        let fs = PolarFs::instant();
        let idx = populated_index();
        write_checkpoint(&fs, 1, 21, 12345, std::slice::from_ref(&idx)).unwrap();
        assert_eq!(latest_checkpoint(&fs), Some(1));
        let meta = read_meta(&fs, 1).unwrap();
        assert_eq!(meta.csn, 21);
        assert_eq!(meta.redo_offset, 12345);

        let restored = load_index(&fs, 1, &schema(), 8).unwrap();
        assert_eq!(restored.visible_vid(), 21);
        assert_eq!(restored.next_rid(), idx.next_rid());
        let snap = restored.snapshot();
        for pk in 0..20i64 {
            if pk == 5 {
                assert!(snap.get_by_pk(pk).is_none(), "deleted row stays gone");
            } else {
                let row = snap.get_by_pk(pk).unwrap();
                assert_eq!(row[1], Value::Int(pk * 2));
                assert_eq!(row[2], Value::Str(format!("s{pk}")));
            }
        }
    }

    #[test]
    fn restored_index_accepts_new_dml() {
        let fs = PolarFs::instant();
        let idx = populated_index();
        write_checkpoint(&fs, 7, 21, 0, &[idx]).unwrap();
        let restored = load_index(&fs, 7, &schema(), 8).unwrap();
        restored
            .insert(
                Vid(22),
                &[Value::Int(100), Value::Int(1), Value::Str("new".into())],
            )
            .unwrap();
        restored
            .update(Vid(23), 0, &[Value::Int(0), Value::Int(999), Value::Null])
            .unwrap();
        restored.advance_visible(Vid(23));
        let snap = restored.snapshot();
        assert_eq!(snap.get_by_pk(100).unwrap()[1], Value::Int(1));
        assert_eq!(snap.get_by_pk(0).unwrap()[1], Value::Int(999));
    }

    #[test]
    fn vid_masking_respected_on_load() {
        // Take the checkpoint at csn=20: the delete at 21 must be masked
        // out, so the restored index still shows pk 5.
        let fs = PolarFs::instant();
        let idx = populated_index();
        write_checkpoint(&fs, 2, 20, 0, &[idx]).unwrap();
        let restored = load_index(&fs, 2, &schema(), 8).unwrap();
        // Scans go through the VID maps: the post-CSN delete is masked,
        // so row 5 (RID 5 → group 0, offset 5) is visible at csn 20.
        // (The point-lookup path via the locator legitimately lost the
        // mapping — replaying the REDO suffix from the checkpoint's
        // cursor re-applies the delete and re-converges both paths.)
        let groups = restored.groups();
        let (g, off) = restored.rid_pos(imci_common::Rid(5));
        assert!(
            groups[g].visible(off, 20),
            "post-CSN delete must not leak into checkpointed VID maps"
        );
    }

    #[test]
    fn latest_checkpoint_picks_max() {
        let fs = PolarFs::instant();
        let idx = populated_index();
        write_checkpoint(&fs, 3, 21, 0, std::slice::from_ref(&idx)).unwrap();
        write_checkpoint(&fs, 10, 21, 0, &[idx]).unwrap();
        assert_eq!(latest_checkpoint(&fs), Some(10));
        assert_eq!(latest_checkpoint(&PolarFs::instant()), None);
    }

    #[test]
    fn build_from_rows_bulk_load() {
        let rows =
            (0..100i64).map(|pk| vec![Value::Int(pk), Value::Int(pk), Value::Str("x".into())]);
        let idx = build_from_rows(&schema(), 16, Vid(1), rows).unwrap();
        let snap = idx.snapshot();
        assert_eq!(snap.get_by_pk(42).unwrap()[1], Value::Int(42));
        assert_eq!(idx.groups().len(), 100usize.div_ceil(16));
    }
}
