//! Selection vectors — sorted row-offset lists threaded through the
//! scan pipeline (MonetDB/X100-style late materialization).
//!
//! A [`SelVec`] names the rows of one row group (or batch) that are
//! still alive at some point in the pipeline: first the MVCC-visible
//! offsets, then progressively refined by each predicate evaluated on
//! the *compressed* packs, and finally used for a single late gather of
//! the payload columns. Offsets are strictly increasing `u32`s, which
//! makes conjunction a `retain`, disjunction a sorted merge, and
//! negation a sorted difference.

/// A sorted, duplicate-free set of row offsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelVec {
    idx: Vec<u32>,
}

impl SelVec {
    /// The empty selection.
    pub fn new() -> SelVec {
        SelVec::default()
    }

    /// Wrap an already-sorted, duplicate-free offset list.
    pub fn from_sorted(idx: Vec<u32>) -> SelVec {
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]), "SelVec not sorted");
        SelVec { idx }
    }

    /// The full selection `0..n`.
    pub fn identity(n: usize) -> SelVec {
        SelVec {
            idx: (0..n as u32).collect(),
        }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// The offsets as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.idx
    }

    /// Consume into the raw offset vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.idx
    }

    /// Iterate the selected offsets.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.idx.iter().copied()
    }

    /// Append an offset (must be greater than the current last).
    pub fn push(&mut self, i: u32) {
        debug_assert!(self.idx.last().is_none_or(|&l| l < i));
        self.idx.push(i);
    }

    /// Keep only offsets satisfying `f` (in-place conjunction).
    pub fn retain(&mut self, mut f: impl FnMut(u32) -> bool) {
        self.idx.retain(|&i| f(i));
    }

    /// Sorted-merge union (disjunction of two refinements of the same
    /// parent selection).
    pub fn union(&self, other: &SelVec) -> SelVec {
        let (a, b) = (&self.idx, &other.idx);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        SelVec { idx: out }
    }

    /// Sorted difference `self \ other` (negation within a parent
    /// selection).
    pub fn difference(&self, other: &SelVec) -> SelVec {
        let mut out = Vec::with_capacity(self.idx.len());
        let mut j = 0;
        for &i in &self.idx {
            while j < other.idx.len() && other.idx[j] < i {
                j += 1;
            }
            if j < other.idx.len() && other.idx[j] == i {
                j += 1;
            } else {
                out.push(i);
            }
        }
        SelVec { idx: out }
    }
}

impl std::ops::Deref for SelVec {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        &self.idx
    }
}

impl From<Vec<u32>> for SelVec {
    fn from(idx: Vec<u32>) -> SelVec {
        SelVec::from_sorted(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_retain() {
        let mut s = SelVec::identity(6);
        assert_eq!(s.len(), 6);
        s.retain(|i| i % 2 == 0);
        assert_eq!(s.as_slice(), &[0, 2, 4]);
    }

    #[test]
    fn union_and_difference() {
        let a = SelVec::from_sorted(vec![0, 2, 4, 7]);
        let b = SelVec::from_sorted(vec![1, 2, 5, 7, 9]);
        assert_eq!(a.union(&b).as_slice(), &[0, 1, 2, 4, 5, 7, 9]);
        assert_eq!(a.difference(&b).as_slice(), &[0, 4]);
        assert_eq!(b.difference(&a).as_slice(), &[1, 5, 9]);
        let empty = SelVec::new();
        assert_eq!(a.union(&empty), a);
        assert_eq!(a.difference(&empty), a);
        assert!(empty.difference(&a).is_empty());
    }

    #[test]
    fn push_and_iter() {
        let mut s = SelVec::new();
        s.push(3);
        s.push(9);
        assert_eq!(s.iter().collect::<Vec<u32>>(), vec![3, 9]);
        assert_eq!(&s[..], &[3, 9], "derefs to a slice");
    }
}
