//! In-Memory Column Index (IMCI) — the primary contribution of
//! *PolarDB-IMCI: A Cloud-Native HTAP Database System at Alibaba*
//! (SIGMOD 2023), reimplemented as a standalone Rust library.
//!
//! The column index is *complementary storage* beside a row store
//! (paper §4): tables are divided into append-only **row groups** of
//! 64 Ki rows; within a group each column forms a **Data Pack**
//! (compressed when the group seals, mutable "Partial Pack" while it is
//! the tail). Rows live in *insertion order* and are addressed by dense
//! **RIDs**; a two-layer LSM **RID locator** maps primary keys to RIDs.
//! MVCC visibility is provided by per-group **insert/delete VID maps**:
//! updates are out-of-place (delete + append), so writers never contend
//! on a row slot and ingestion stays fast — the property the paper's
//! freshness results (Figs. 12/13) rest on.
//!
//! Module map:
//! * [`column`] — mutable typed columns (Partial Packs);
//! * [`pack`] — compressed immutable packs + min/max/histogram metadata;
//! * [`selvec`] — sorted selection vectors for late-materialized scans;
//! * [`vidmap`] — insert/delete version maps and the visibility rule;
//! * [`locator`] — the two-layer LSM RID locator;
//! * [`rowgroup`] — row groups tying the above together;
//! * [`index`] — the per-table [`ColumnIndex`] with §4.2 DML semantics;
//! * [`compaction`] — §4.3 hole reclamation;
//! * [`checkpoint`] — §7 checkpoints on shared storage;
//! * [`store`] — the per-node collection of indexes.

pub mod checkpoint;
pub mod column;
pub mod compaction;
pub mod index;
pub mod locator;
pub mod pack;
pub mod rowgroup;
pub mod selvec;
pub mod store;
pub mod vidmap;

pub use checkpoint::{
    build_from_rows, ckpt_catalog_key, ckpt_rowpages_prefix, latest_checkpoint, load_index,
    read_meta, write_checkpoint, CheckpointMeta,
};
pub use column::{ColumnData, Dictionary};
pub use compaction::{compact, CompactionReport};
pub use index::{ColumnIndex, PinnedGroup, Snapshot, DEFAULT_GROUP_CAPACITY};
pub use locator::{LocatorSnapshot, RidLocator};
pub use pack::{BitPacked, Bitmap, Pack, PackData, PackMeta};
pub use rowgroup::{ColumnRead, ColumnSlot, RowGroup};
pub use selvec::SelVec;
pub use store::ColumnStore;
pub use vidmap::{row_visible, VidMap, VID_UNSET};
