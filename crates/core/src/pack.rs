//! Immutable compressed Data Packs and their statistics (paper §4.1/4.3).
//!
//! When a row group fills, each partial pack is compressed copy-on-write
//! into a `Pack`:
//!
//! * numeric columns: **frame-of-reference + bit-packing** (the paper
//!   also lists delta encoding; FOR over the post-delta residuals is
//!   equivalent for our sorted RID layout, and the codec stores the
//!   minimal bit width either way);
//! * string columns: **dictionary compression** with bit-packed codes.
//!
//! Each pack carries a [`PackMeta`] (min/max/sum/count/null count/
//! distinct estimate and a small histogram) used by TableScan to skip
//! packs ("smart scan" pruning, §4.1 Pack Meta).

use crate::column::{ColumnData, Dictionary};
use imci_common::{DataType, Error, Result, Value};

/// Bit-packed array of `len` unsigned integers of `width` bits each.
#[derive(Debug, Clone, PartialEq)]
pub struct BitPacked {
    /// Number of logical entries.
    pub len: usize,
    /// Bits per entry (0..=64; 0 means all values are zero).
    pub width: u8,
    /// Packed words.
    pub words: Vec<u64>,
}

impl BitPacked {
    /// Pack `values`, using the minimal width for their maximum.
    pub fn pack(values: &[u64]) -> BitPacked {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = (64 - max.leading_zeros()) as u8;
        let mut out = BitPacked {
            len: values.len(),
            width,
            words: vec![0u64; (values.len() * width as usize).div_ceil(64)],
        };
        if width == 0 {
            return out;
        }
        for (i, &v) in values.iter().enumerate() {
            let bit = i * width as usize;
            let (w, off) = (bit / 64, bit % 64);
            out.words[w] |= v << off;
            if off + width as usize > 64 {
                out.words[w + 1] |= v >> (64 - off);
            }
        }
        out
    }

    /// Read entry `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        if self.width == 0 {
            return 0;
        }
        let width = self.width as usize;
        let bit = i * width;
        let (w, off) = (bit / 64, bit % 64);
        let mut v = self.words[w] >> off;
        if off + width > 64 {
            v |= self.words[w + 1] << (64 - off);
        }
        if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        }
    }

    /// Visit every entry in order, word-at-a-time: a running
    /// word/offset cursor replaces the per-element `bit = i * width;
    /// bit / 64; bit % 64` round-trip that [`BitPacked::get`] pays, so
    /// bulk decode touches each packed word once. Monomorphizes per
    /// caller — the single home of the cross-word splice arithmetic.
    #[inline]
    pub fn unpack_each(&self, mut f: impl FnMut(u64)) {
        if self.width == 0 {
            for _ in 0..self.len {
                f(0);
            }
            return;
        }
        let width = self.width as usize;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let (mut w, mut off) = (0usize, 0usize);
        for _ in 0..self.len {
            let mut v = self.words[w] >> off;
            if off + width > 64 {
                v |= self.words[w + 1] << (64 - off);
            }
            f(v & mask);
            off += width;
            if off >= 64 {
                off -= 64;
                w += 1;
            }
        }
    }

    /// Bulk-unpack everything into `out`.
    pub fn unpack_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.len);
        self.unpack_each(|v| out.push(v));
    }

    /// Bulk-unpack into `u32`s (dictionary codes; entries must fit in
    /// 32 bits).
    pub fn unpack_into_u32(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.len);
        self.unpack_each(|v| out.push(v as u32));
    }

    fn encoded_size(&self) -> usize {
        16 + self.words.len() * 8
    }
}

/// Compact bitmap for null flags.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bitmap {
    /// Number of logical bits.
    pub len: usize,
    /// Packed words.
    pub words: Vec<u64>,
}

impl Bitmap {
    /// Build from bools.
    pub fn from_bools(bools: &[bool]) -> Bitmap {
        let mut words = vec![0u64; bools.len().div_ceil(64)];
        for (i, &b) in bools.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        Bitmap {
            len: bools.len(),
            words,
        }
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set (lets bulk readers skip per-row tests).
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Expand to one bool per logical bit.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.len);
        for w in 0..self.words.len() {
            let word = self.words[w];
            let n = (self.len - w * 64).min(64);
            for b in 0..n {
                out.push((word >> b) & 1 == 1);
            }
        }
        out
    }
}

/// Per-pack statistics (paper "Pack Meta": min/max, sampling histogram,
/// plus sum/count/null/distinct shown in Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct PackMeta {
    /// Minimum non-null value.
    pub min: Value,
    /// Maximum non-null value.
    pub max: Value,
    /// Sum of numeric values (0 for strings).
    pub sum: f64,
    /// Total rows.
    pub count: u32,
    /// NULL rows.
    pub null_count: u32,
    /// Estimated distinct values.
    pub distinct: u32,
    /// Equi-width histogram over [min, max] for numerics (empty for
    /// strings).
    pub histogram: Vec<u32>,
}

impl PackMeta {
    /// Compute stats over the values of a column slice.
    pub fn compute(values: impl Iterator<Item = Value> + Clone) -> PackMeta {
        let mut min = Value::Null;
        let mut max = Value::Null;
        let mut sum = 0.0;
        let mut count = 0u32;
        let mut null_count = 0u32;
        let mut distinct = imci_common::FxHashSet::default();
        for v in values.clone() {
            count += 1;
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if min.is_null() || v < min {
                min = v.clone();
            }
            if max.is_null() || v > max {
                max = v.clone();
            }
            if let Some(f) = v.as_f64() {
                sum += f;
            }
            if distinct.len() < 4096 {
                distinct.insert(v);
            }
        }
        // 16-bucket equi-width histogram for numeric columns.
        let mut histogram = Vec::new();
        if let (Some(lo), Some(hi)) = (min.as_f64(), max.as_f64()) {
            if hi > lo {
                histogram = vec![0u32; 16];
                let scale = 16.0 / (hi - lo);
                for v in values {
                    if let Some(f) = v.as_f64() {
                        let b = (((f - lo) * scale) as usize).min(15);
                        histogram[b] += 1;
                    }
                }
            }
        }
        PackMeta {
            min,
            max,
            sum,
            count,
            null_count,
            distinct: distinct.len() as u32,
            histogram,
        }
    }

    /// Can any row in this pack satisfy `lo <= v <= hi`? Used for
    /// min/max pruning; `None` bounds are unconstrained.
    pub fn may_contain_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        if self.min.is_null() {
            // all-null pack can satisfy nothing
            return false;
        }
        if let Some(lo) = lo {
            if self.max < *lo {
                return false;
            }
        }
        if let Some(hi) = hi {
            if self.min > *hi {
                return false;
            }
        }
        true
    }

    /// Does *every* row in this pack satisfy `lo <= v <= hi`? The dual
    /// of [`PackMeta::may_contain_range`]: when true, a scan can skip
    /// per-row predicate evaluation entirely and keep its whole
    /// selection (nulls force per-row checks, so any null disqualifies).
    pub fn all_in_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        if self.null_count > 0 || self.min.is_null() {
            return false;
        }
        if let Some(lo) = lo {
            if self.min < *lo {
                return false;
            }
        }
        if let Some(hi) = hi {
            if self.max > *hi {
                return false;
            }
        }
        true
    }
}

/// An immutable compressed column segment.
#[derive(Debug, Clone)]
pub enum PackData {
    /// FOR + bit-packed integers.
    Int {
        /// Frame of reference (minimum).
        base: i64,
        /// Packed residuals.
        packed: BitPacked,
        /// Null bitmap.
        nulls: Bitmap,
    },
    /// Raw doubles (IEEE bits don't bit-pack usefully).
    Double {
        /// Values.
        vals: Vec<f64>,
        /// Null bitmap.
        nulls: Bitmap,
    },
    /// Dictionary-compressed strings.
    Str {
        /// Bit-packed dictionary codes.
        codes: BitPacked,
        /// Dictionary in code order.
        dict: Vec<String>,
        /// Null bitmap.
        nulls: Bitmap,
    },
}

/// A sealed Data Pack: compressed data + statistics.
#[derive(Debug, Clone)]
pub struct Pack {
    /// Compressed payload.
    pub data: PackData,
    /// Statistics for pruning and estimation.
    pub meta: PackMeta,
}

impl Pack {
    /// Compress a partial pack (copy-on-write: the source is untouched).
    pub fn seal(col: &ColumnData) -> Pack {
        let n = col.len();
        let meta = PackMeta::compute((0..n).map(|i| col.get(i)));
        let data = match col {
            ColumnData::Int { vals, nulls } => {
                let base = vals
                    .iter()
                    .zip(nulls)
                    .filter(|(_, &nl)| !nl)
                    .map(|(v, _)| *v)
                    .min()
                    .unwrap_or(0);
                // Wrapping arithmetic: residuals live in mod-2^64 space,
                // which roundtrips exactly even when max-min overflows i64.
                let residuals: Vec<u64> = vals
                    .iter()
                    .zip(nulls)
                    .map(|(v, &nl)| if nl { 0 } else { v.wrapping_sub(base) as u64 })
                    .collect();
                PackData::Int {
                    base,
                    packed: BitPacked::pack(&residuals),
                    nulls: Bitmap::from_bools(nulls),
                }
            }
            ColumnData::Double { vals, nulls } => PackData::Double {
                vals: vals.clone(),
                nulls: Bitmap::from_bools(nulls),
            },
            ColumnData::Str { codes, nulls, dict } => PackData::Str {
                codes: BitPacked::pack(&codes.iter().map(|&c| c as u64).collect::<Vec<u64>>()),
                dict: dict.strings().to_vec(),
                nulls: Bitmap::from_bools(nulls),
            },
        };
        Pack { data, meta }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            PackData::Int { nulls, .. }
            | PackData::Double { nulls, .. }
            | PackData::Str { nulls, .. } => nulls.len,
        }
    }

    /// True when the pack holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read row `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match &self.data {
            PackData::Int {
                base,
                packed,
                nulls,
            } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Int(base.wrapping_add(packed.get(i) as i64))
                }
            }
            PackData::Double { vals, nulls } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Double(vals[i])
                }
            }
            PackData::Str { codes, dict, nulls } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Str(dict[codes.get(i) as usize].clone())
                }
            }
        }
    }

    /// Decompress into a mutable column (used by checkpoint load and by
    /// the executor's materializing scan). Bulk path: one word-at-a-time
    /// unpack of the packed codes plus one bitmap expansion — no
    /// per-element shift/mask round-trips.
    pub fn decode(&self) -> ColumnData {
        match &self.data {
            PackData::Int {
                base,
                packed,
                nulls,
            } => {
                let mut residuals = Vec::new();
                packed.unpack_into(&mut residuals);
                let nl = nulls.to_bools();
                let vals: Vec<i64> = residuals
                    .iter()
                    .zip(&nl)
                    .map(|(&r, &isnull)| {
                        if isnull {
                            0
                        } else {
                            base.wrapping_add(r as i64)
                        }
                    })
                    .collect();
                ColumnData::Int { vals, nulls: nl }
            }
            PackData::Double { vals, nulls } => ColumnData::Double {
                vals: vals.clone(),
                nulls: nulls.to_bools(),
            },
            PackData::Str { codes, dict, nulls } => {
                let mut d = Dictionary::default();
                let remap: Vec<u32> = dict.iter().map(|s| d.intern(s)).collect();
                let mut cs = Vec::new();
                codes.unpack_into_u32(&mut cs);
                let nl = nulls.to_bools();
                for (c, &isnull) in cs.iter_mut().zip(&nl) {
                    *c = if isnull { 0 } else { remap[*c as usize] };
                }
                ColumnData::Str {
                    codes: cs,
                    nulls: nl,
                    dict: d,
                }
            }
        }
    }

    /// Gather rows at `idx` directly from the compressed form into a
    /// mutable typed column (scan hot path). With late materialization
    /// this runs once per column, *after* filtering, over the surviving
    /// selection only. Null-free packs skip the per-row bitmap probes.
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        let no_nulls = self.meta.null_count == 0;
        match &self.data {
            PackData::Int {
                base,
                packed,
                nulls,
            } => {
                let mut vals = Vec::with_capacity(idx.len());
                if no_nulls {
                    for &i in idx {
                        vals.push(base.wrapping_add(packed.get(i as usize) as i64));
                    }
                    return ColumnData::Int {
                        vals,
                        nulls: vec![false; idx.len()],
                    };
                }
                let mut nl = Vec::with_capacity(idx.len());
                for &i in idx {
                    let i = i as usize;
                    let isnull = nulls.get(i);
                    nl.push(isnull);
                    vals.push(if isnull {
                        0
                    } else {
                        base.wrapping_add(packed.get(i) as i64)
                    });
                }
                ColumnData::Int { vals, nulls: nl }
            }
            PackData::Double { vals, nulls } => {
                let mut v = Vec::with_capacity(idx.len());
                let mut nl = Vec::with_capacity(idx.len());
                for &i in idx {
                    let i = i as usize;
                    nl.push(nulls.get(i));
                    v.push(vals[i]);
                }
                ColumnData::Double { vals: v, nulls: nl }
            }
            PackData::Str { codes, dict, nulls } => {
                let mut d = Dictionary::default();
                let remap: Vec<u32> = dict.iter().map(|s| d.intern(s)).collect();
                let mut cs = Vec::with_capacity(idx.len());
                if no_nulls {
                    for &i in idx {
                        cs.push(remap[codes.get(i as usize) as usize]);
                    }
                    return ColumnData::Str {
                        codes: cs,
                        nulls: vec![false; idx.len()],
                        dict: d,
                    };
                }
                let mut nl = Vec::with_capacity(idx.len());
                for &i in idx {
                    let i = i as usize;
                    let isnull = nulls.get(i);
                    nl.push(isnull);
                    cs.push(if isnull {
                        0
                    } else {
                        remap[codes.get(i) as usize]
                    });
                }
                ColumnData::Str {
                    codes: cs,
                    nulls: nl,
                    dict: d,
                }
            }
        }
    }

    /// Approximate compressed footprint in bytes.
    pub fn compressed_size(&self) -> usize {
        match &self.data {
            PackData::Int { packed, nulls, .. } => {
                8 + packed.encoded_size() + nulls.words.len() * 8
            }
            PackData::Double { vals, nulls } => vals.len() * 8 + nulls.words.len() * 8,
            PackData::Str { codes, dict, nulls } => {
                codes.encoded_size()
                    + dict.iter().map(|s| s.len() + 4).sum::<usize>()
                    + nulls.words.len() * 8
            }
        }
    }

    // ---- binary codec (checkpoints) ----

    /// Serialize for the checkpoint object store.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_size() + 64);
        let put_bitpacked = |out: &mut Vec<u8>, bp: &BitPacked| {
            out.extend_from_slice(&(bp.len as u64).to_le_bytes());
            out.push(bp.width);
            out.extend_from_slice(&(bp.words.len() as u32).to_le_bytes());
            for w in &bp.words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        };
        let put_bitmap = |out: &mut Vec<u8>, bm: &Bitmap| {
            out.extend_from_slice(&(bm.len as u64).to_le_bytes());
            out.extend_from_slice(&(bm.words.len() as u32).to_le_bytes());
            for w in &bm.words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        };
        match &self.data {
            PackData::Int {
                base,
                packed,
                nulls,
            } => {
                out.push(1);
                out.extend_from_slice(&base.to_le_bytes());
                put_bitpacked(&mut out, packed);
                put_bitmap(&mut out, nulls);
            }
            PackData::Double { vals, nulls } => {
                out.push(2);
                out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
                for v in vals {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                put_bitmap(&mut out, nulls);
            }
            PackData::Str { codes, dict, nulls } => {
                out.push(3);
                put_bitpacked(&mut out, codes);
                out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for s in dict {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                put_bitmap(&mut out, nulls);
            }
        }
        out
    }

    /// Deserialize from a checkpoint object. Recomputes meta.
    pub fn decode_bytes(bytes: &[u8]) -> Result<Pack> {
        struct R<'a> {
            b: &'a [u8],
            p: usize,
        }
        impl<'a> R<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8]> {
                if self.p + n > self.b.len() {
                    return Err(Error::Storage("pack truncated".into()));
                }
                let s = &self.b[self.p..self.p + n];
                self.p += n;
                Ok(s)
            }
            fn u8(&mut self) -> Result<u8> {
                Ok(self.take(1)?[0])
            }
            fn u32(&mut self) -> Result<u32> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn i64(&mut self) -> Result<i64> {
                Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn bitpacked(&mut self) -> Result<BitPacked> {
                let len = self.u64()? as usize;
                let width = self.u8()?;
                let nw = self.u32()? as usize;
                let mut words = Vec::with_capacity(nw);
                for _ in 0..nw {
                    words.push(self.u64()?);
                }
                Ok(BitPacked { len, width, words })
            }
            fn bitmap(&mut self) -> Result<Bitmap> {
                let len = self.u64()? as usize;
                let nw = self.u32()? as usize;
                let mut words = Vec::with_capacity(nw);
                for _ in 0..nw {
                    words.push(self.u64()?);
                }
                Ok(Bitmap { len, words })
            }
        }
        let mut r = R { b: bytes, p: 0 };
        let data = match r.u8()? {
            1 => {
                let base = r.i64()?;
                let packed = r.bitpacked()?;
                let nulls = r.bitmap()?;
                PackData::Int {
                    base,
                    packed,
                    nulls,
                }
            }
            2 => {
                let n = r.u64()? as usize;
                let mut vals = Vec::with_capacity(n);
                for _ in 0..n {
                    vals.push(f64::from_bits(r.u64()?));
                }
                PackData::Double {
                    vals,
                    nulls: r.bitmap()?,
                }
            }
            3 => {
                let codes = r.bitpacked()?;
                let nd = r.u32()? as usize;
                let mut dict = Vec::with_capacity(nd);
                for _ in 0..nd {
                    let len = r.u32()? as usize;
                    dict.push(
                        std::str::from_utf8(r.take(len)?)
                            .map_err(|e| Error::Storage(format!("pack bad utf8: {e}")))?
                            .to_owned(),
                    );
                }
                let nulls = r.bitmap()?;
                PackData::Str { codes, dict, nulls }
            }
            t => return Err(Error::Storage(format!("bad pack tag {t}"))),
        };
        let tmp = Pack {
            meta: PackMeta {
                min: Value::Null,
                max: Value::Null,
                sum: 0.0,
                count: 0,
                null_count: 0,
                distinct: 0,
                histogram: Vec::new(),
            },
            data,
        };
        let n = tmp.len();
        let meta = PackMeta::compute((0..n).map(|i| tmp.get(i)));
        Ok(Pack { meta, ..tmp })
    }

    /// The column's logical data type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            PackData::Int { .. } => DataType::Int,
            PackData::Double { .. } => DataType::Double,
            PackData::Str { .. } => DataType::Str,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitpack_roundtrip_various_widths() {
        for max in [0u64, 1, 7, 255, 1 << 20, u64::MAX >> 1, u64::MAX] {
            let values: Vec<u64> = (0..200).map(|i| (i * 31) % max.max(1)).collect();
            let bp = BitPacked::pack(&values);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(bp.get(i), v, "width {} idx {i}", bp.width);
            }
            let mut out = Vec::new();
            bp.unpack_into(&mut out);
            assert_eq!(out, values);
        }
    }

    #[test]
    fn int_pack_seal_and_read() {
        let mut col = ColumnData::new(DataType::Int);
        for i in 0..1000 {
            if i % 17 == 0 {
                col.set(i, &Value::Null).unwrap();
            } else {
                col.set(i, &Value::Int(1_000_000 + (i as i64 % 100)))
                    .unwrap();
            }
        }
        let pack = Pack::seal(&col);
        for i in 0..1000 {
            assert_eq!(pack.get(i), col.get(i), "row {i}");
        }
        // FOR compression: 100 distinct values near 1e6 need ≤7 bits.
        assert!(
            pack.compressed_size() < 1000 * 8 / 4,
            "expected ≥4x compression, got {} bytes",
            pack.compressed_size()
        );
    }

    #[test]
    fn str_pack_dictionary_compression() {
        let mut col = ColumnData::new(DataType::Str);
        let words = ["alpha", "beta", "gamma", "delta"];
        for i in 0..1000 {
            col.set(i, &Value::Str(words[i % 4].into())).unwrap();
        }
        let pack = Pack::seal(&col);
        assert_eq!(pack.get(5), Value::Str("beta".into()));
        assert!(pack.compressed_size() < 1000);
        assert_eq!(pack.meta.distinct, 4);
    }

    #[test]
    fn double_pack_roundtrip() {
        let mut col = ColumnData::new(DataType::Double);
        for i in 0..100 {
            col.set(i, &Value::Double(i as f64 * 0.5)).unwrap();
        }
        let pack = Pack::seal(&col);
        assert_eq!(pack.get(3), Value::Double(1.5));
        assert_eq!(pack.meta.max, Value::Double(49.5));
    }

    #[test]
    fn meta_min_max_sum_histogram() {
        let mut col = ColumnData::new(DataType::Int);
        for i in 0..160 {
            col.set(i, &Value::Int(i as i64)).unwrap();
        }
        let pack = Pack::seal(&col);
        assert_eq!(pack.meta.min, Value::Int(0));
        assert_eq!(pack.meta.max, Value::Int(159));
        assert_eq!(pack.meta.sum, (0..160).sum::<i64>() as f64);
        assert_eq!(pack.meta.count, 160);
        assert_eq!(pack.meta.histogram.len(), 16);
        assert_eq!(pack.meta.histogram.iter().sum::<u32>(), 160);
    }

    #[test]
    fn bulk_unpack_matches_point_gets() {
        for width_max in [0u64, 1, 3, 100, 1 << 13, 1 << 33, u64::MAX] {
            let values: Vec<u64> = (0..777)
                .map(|i| (i as u64).wrapping_mul(0x9e37_79b9) % width_max.max(1))
                .collect();
            let bp = BitPacked::pack(&values);
            let mut out64 = Vec::new();
            bp.unpack_into(&mut out64);
            assert_eq!(out64, values, "u64 bulk, width {}", bp.width);
            if bp.width <= 32 {
                let mut out32 = Vec::new();
                bp.unpack_into_u32(&mut out32);
                let expect: Vec<u32> = values.iter().map(|&v| v as u32).collect();
                assert_eq!(out32, expect, "u32 bulk, width {}", bp.width);
            }
        }
    }

    #[test]
    fn bitmap_bulk_helpers() {
        let bools: Vec<bool> = (0..130).map(|i| i % 7 == 0).collect();
        let bm = Bitmap::from_bools(&bools);
        assert_eq!(bm.to_bools(), bools);
        assert!(!bm.none_set());
        assert!(Bitmap::from_bools(&[false; 100]).none_set());
        assert_eq!(Bitmap::from_bools(&[]).to_bools(), Vec::<bool>::new());
    }

    #[test]
    fn all_in_range_dual_of_pruning() {
        let mut col = ColumnData::new(DataType::Int);
        for i in 0..10 {
            col.set(i, &Value::Int(100 + i as i64)).unwrap();
        }
        let m = &Pack::seal(&col).meta;
        assert!(m.all_in_range(Some(&Value::Int(100)), Some(&Value::Int(109))));
        assert!(m.all_in_range(Some(&Value::Int(0)), None));
        assert!(
            !m.all_in_range(Some(&Value::Int(101)), None),
            "min below lo"
        );
        assert!(
            !m.all_in_range(None, Some(&Value::Int(108))),
            "max above hi"
        );
        // Any null disqualifies: per-row checks must still run.
        let mut with_null = ColumnData::new(DataType::Int);
        with_null.set(0, &Value::Int(5)).unwrap();
        with_null.set(1, &Value::Null).unwrap();
        let m = &Pack::seal(&with_null).meta;
        assert!(!m.all_in_range(Some(&Value::Int(0)), None));
    }

    #[test]
    fn pruning_predicate() {
        let mut col = ColumnData::new(DataType::Int);
        for i in 0..10 {
            col.set(i, &Value::Int(100 + i as i64)).unwrap();
        }
        let m = &Pack::seal(&col).meta;
        assert!(m.may_contain_range(Some(&Value::Int(105)), None));
        assert!(!m.may_contain_range(Some(&Value::Int(200)), None));
        assert!(!m.may_contain_range(None, Some(&Value::Int(50))));
        assert!(m.may_contain_range(Some(&Value::Int(0)), Some(&Value::Int(100))));
    }

    #[test]
    fn all_null_pack_prunes_everything() {
        let mut col = ColumnData::new(DataType::Int);
        col.set(9, &Value::Null).unwrap();
        let m = &Pack::seal(&col).meta;
        assert!(!m.may_contain_range(Some(&Value::Int(0)), None));
        assert_eq!(m.null_count, 10);
    }

    #[test]
    fn pack_codec_roundtrip() {
        let mut ic = ColumnData::new(DataType::Int);
        let mut sc = ColumnData::new(DataType::Str);
        let mut dc = ColumnData::new(DataType::Double);
        for i in 0..500 {
            ic.set(i, &Value::Int(i as i64 * 3 - 700)).unwrap();
            sc.set(i, &Value::Str(format!("s{}", i % 13))).unwrap();
            if i % 7 != 0 {
                dc.set(i, &Value::Double(i as f64 / 3.0)).unwrap();
            } else {
                dc.set(i, &Value::Null).unwrap();
            }
        }
        for col in [&ic, &sc, &dc] {
            let pack = Pack::seal(col);
            let restored = Pack::decode_bytes(&pack.encode()).unwrap();
            assert_eq!(restored.len(), pack.len());
            for i in 0..pack.len() {
                assert_eq!(restored.get(i), pack.get(i));
            }
            assert_eq!(restored.meta.min, pack.meta.min);
            assert_eq!(restored.meta.max, pack.meta.max);
        }
    }

    #[test]
    fn decode_back_to_column() {
        let mut col = ColumnData::new(DataType::Str);
        for i in 0..50 {
            col.set(i, &Value::Str(format!("w{}", i % 5))).unwrap();
        }
        let pack = Pack::seal(&col);
        let back = pack.decode();
        for i in 0..50 {
            assert_eq!(back.get(i), col.get(i));
        }
    }
}
