//! Background compaction of sparse packs (paper §4.3 "Compaction").
//!
//! Delete operations punch holes in sealed row groups. When a group's
//! valid-row ratio drops below a threshold (the paper's example: "less
//! than half of the valid rows"), compaction re-appends all its valid
//! rows to the partial packs — expressed as ordinary out-of-place update
//! operations — so old rows stay readable by active snapshots during and
//! after the move (non-blocking). The drained group is physically
//! reclaimed once no active snapshot can still reference it.
//!
//! The migration VID is the current visible watermark `V`: old versions
//! carry `delete_vid = V`, new versions `insert_vid = V`, so every
//! snapshot sees exactly one copy (`csn < V` → old, `csn >= V` → new).
//!
//! Simplification vs. the paper: the paper routes compaction through a
//! normal transaction on the replication path; we run it quiesced at a
//! Phase-2 batch boundary (callers guarantee no concurrent DML), which
//! preserves reader-side non-blocking behaviour — the property the
//! evaluation depends on.

use crate::index::ColumnIndex;
use imci_common::{Result, Vid};
use std::sync::Arc;

/// Outcome of one compaction pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// Groups whose live rows were migrated.
    pub groups_compacted: usize,
    /// Rows re-appended.
    pub rows_moved: usize,
    /// Groups physically reclaimed this pass.
    pub groups_reclaimed: usize,
    /// Insert-VID maps dropped this pass (§4.3 memory optimization).
    pub insert_maps_dropped: usize,
}

/// One compaction pass over `index`.
///
/// `valid_ratio_threshold` — groups with `live/capacity` strictly below
/// this are compacted (paper uses 0.5).
pub fn compact(index: &Arc<ColumnIndex>, valid_ratio_threshold: f64) -> Result<CompactionReport> {
    let mut report = CompactionReport::default();
    let v = Vid(index.visible_vid());
    let groups = index.groups();
    let n_groups = groups.len();
    for group in groups {
        if !group.is_sealed() || group.is_reclaimed() {
            continue;
        }
        // Never compact into ourselves: the last group is partial anyway.
        if group.id as usize + 1 >= n_groups {
            continue;
        }
        let live = group.live_rows();
        if live == 0 || (live as f64) / (group.capacity() as f64) >= valid_ratio_threshold {
            continue;
        }
        // Re-append each live row: a compaction "update" (delete old
        // version at V, insert new version at V).
        let width = group.width();
        for off in 0..group.rows_written() {
            if group.delete_vid(off) != crate::vidmap::VID_UNSET {
                continue;
            }
            if group.insert_vid(off) == crate::vidmap::VID_UNSET {
                continue; // never-committed residue (pre-commit garbage)
            }
            let values: Vec<imci_common::Value> =
                (0..width).map(|c| group.value_at(c, off)).collect();
            let pk = match values[index.pk_pos].as_int() {
                Some(pk) => pk,
                None => continue,
            };
            // Old version: logically deleted at V (still visible to
            // snapshots below V).
            group.set_delete_vid(off, v);
            // New version: fresh RID, visible from V on. Re-points the
            // locator at the new RID.
            let rid = index.alloc_rids(1);
            index.locator().insert(pk, rid);
            let (g, noff) = index.rid_pos(rid);
            let target = index.group_at(g);
            // Group list may need growing; group_at handles that. A
            // sealed target can only happen if RID allocation raced a
            // seal; fall back to the regular insert path then.
            let target = if target.is_sealed() {
                // Capacity raced; fall back to the regular insert path.
                index.locator().remove(pk);
                index.insert(v, &values)?;
                report.rows_moved += 1;
                continue;
            } else {
                target
            };
            target.write_row(noff, &values)?;
            target.set_insert_vid(noff, v);
            target.seal_if_full();
            report.rows_moved += 1;
        }
        report.groups_compacted += 1;
    }
    // Reclamation + insert-map dropping ride on the same pass.
    let min_active = index.min_active_csn();
    for group in index.groups() {
        if group.try_reclaim(min_active) {
            report.groups_reclaimed += 1;
        }
    }
    report.insert_maps_dropped = index.drop_old_insert_maps();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Schema, TableId, Value};

    fn schema() -> Schema {
        Schema::new(
            TableId(1),
            "t",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn sparse_group_is_compacted_and_reclaimed() {
        let idx = ColumnIndex::for_schema(&schema(), 8);
        for pk in 0..16i64 {
            idx.insert(Vid(1), &[Value::Int(pk), Value::Int(pk * 10)])
                .unwrap();
        }
        idx.advance_visible(Vid(1));
        // Kill 6 of the first group's 8 rows → ratio 0.25 < 0.5.
        for pk in 0..6i64 {
            idx.delete(Vid(2), pk).unwrap();
        }
        idx.advance_visible(Vid(2));

        let report = compact(&idx, 0.5).unwrap();
        assert_eq!(report.groups_compacted, 1);
        assert_eq!(report.rows_moved, 2, "rows 6 and 7 migrate");
        // No snapshot was pinned below the migration VID, so the fully
        // drained group reclaims within the same pass.
        assert_eq!(report.groups_reclaimed, 1);
        assert!(idx.groups()[0].is_reclaimed());

        // All 10 surviving rows still readable at the new watermark.
        let snap = idx.snapshot();
        for pk in 6..16i64 {
            let row = snap.get_by_pk(pk).unwrap();
            assert_eq!(row[1], Value::Int(pk * 10), "pk {pk} after compaction");
        }
        for pk in 0..6i64 {
            assert!(snap.get_by_pk(pk).is_none());
        }
    }

    #[test]
    fn dense_groups_left_alone() {
        let idx = ColumnIndex::for_schema(&schema(), 8);
        for pk in 0..16i64 {
            idx.insert(Vid(1), &[Value::Int(pk), Value::Int(0)])
                .unwrap();
        }
        idx.advance_visible(Vid(1));
        idx.delete(Vid(2), 0).unwrap(); // 7/8 live: above threshold
        idx.advance_visible(Vid(2));
        let report = compact(&idx, 0.5).unwrap();
        assert_eq!(report.groups_compacted, 0);
        assert_eq!(report.rows_moved, 0);
    }

    #[test]
    fn old_versions_stay_visible_to_pinned_snapshots() {
        let idx = ColumnIndex::for_schema(&schema(), 4);
        for pk in 0..8i64 {
            idx.insert(Vid(1), &[Value::Int(pk), Value::Int(pk)])
                .unwrap();
        }
        idx.advance_visible(Vid(1));
        let pinned = idx.snapshot(); // csn = 1
        for pk in 0..3i64 {
            idx.delete(Vid(2), pk).unwrap();
        }
        idx.advance_visible(Vid(2));
        compact(&idx, 0.5).unwrap();
        // The pinned snapshot still sees every original row via scans:
        // group 0's rows 0..4 all visible at csn 1.
        let g0 = &pinned.groups()[0];
        assert_eq!(g0.visible_offsets(pinned.csn).len(), 4);
        assert!(!g0.is_reclaimed(), "reclamation blocked by pinned snapshot");
    }
}
