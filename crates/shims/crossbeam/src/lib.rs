//! API-compatible subset of `crossbeam::channel`, backed by
//! `std::sync::mpsc`. Offline shim — see the workspace manifest for
//! the policy. Only the bounded MPSC shape the replication pipeline
//! uses is provided (cloneable senders, single-consumer receivers).

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use std::time::Duration;

    pub struct Sender<T> {
        inner: std::sync::mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }

        pub fn try_send(&self, value: T) -> Result<(), std::sync::mpsc::TrySendError<T>> {
            self.inner.try_send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            tx2.send(7).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
