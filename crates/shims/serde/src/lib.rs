//! Offline shim for `serde`: the workspace only uses serde's derive
//! macros decoratively (no code actually serializes through serde —
//! all on-disk codecs are hand-rolled), so the derives expand to
//! nothing. Swapping in the real serde restores full behavior without
//! source changes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
