//! Regression tests for the lock-order sentinel. The whole file is
//! gated: without `--features lock-order` it compiles to nothing.
#![cfg(feature = "lock-order")]

use parking_lot::{Condvar, Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn inversion_panics_naming_both_acquisition_sites() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);

    // Establish the order A → B.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    // Now take them in reverse. The sentinel must refuse the second
    // acquisition *before* it can block.
    let held_line;
    let acq_line;
    let result = {
        held_line = line!() + 3;
        acq_line = line!() + 3;
        catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // panics here
        }))
    };
    let msg = panic_message(result.expect_err("inversion must panic"));

    assert!(msg.contains("inversion"), "unexpected message: {msg}");
    assert!(
        msg.contains(&format!("lock_order.rs:{acq_line}")),
        "message must name the acquiring site (line {acq_line}): {msg}"
    );
    assert!(
        msg.contains(&format!("lock_order.rs:{held_line}")),
        "message must name the held lock's site (line {held_line}): {msg}"
    );
    // And the witness of the originally observed (correct) order.
    assert!(
        msg.contains("reverse order witnessed"),
        "message must cite the forward-order witness: {msg}"
    );
}

#[test]
fn double_acquire_panics_with_first_site() {
    let m = Mutex::new(());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _g1 = m.lock();
        let _g2 = m.lock(); // self-deadlock under std — must panic
    }));
    let msg = panic_message(result.expect_err("double acquire must panic"));
    assert!(msg.contains("double acquire"), "unexpected message: {msg}");
    assert!(
        msg.contains("lock_order.rs"),
        "must name the first site: {msg}"
    );
}

#[test]
fn rwlock_write_then_write_panics_but_read_read_does_not() {
    let rw = RwLock::new(0u32);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _w1 = rw.write();
        let _w2 = rw.write();
    }));
    assert!(result.is_err(), "write-while-write must panic");

    // Re-entrant reads only warn (they deadlock only if a writer
    // queues in between) — must not panic.
    let r1 = rw.read();
    let r2 = rw.read();
    assert_eq!(*r1 + *r2, 0);
}

#[test]
fn consistent_order_and_condvar_waits_stay_silent() {
    // The documented conn-lock order (q → tenant-queue → out) taken
    // consistently from two threads must not trip the sentinel, and a
    // condvar wait must not count as holding the mutex.
    let locks = Arc::new((Mutex::new(0u32), Mutex::new(0u32), Mutex::new(0u32)));
    let cv = Arc::new((Mutex::new(false), Condvar::new()));

    let mut handles = Vec::new();
    for _ in 0..2 {
        let locks = locks.clone();
        let cv = cv.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let _q = locks.0.lock();
                let _t = locks.1.lock();
                let _o = locks.2.lock();
            }
            let (m, c) = &*cv;
            let mut ready = m.lock();
            while !*ready {
                c.wait_for(&mut ready, Duration::from_millis(50));
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(20));
    *cv.0.lock() = true;
    cv.1.notify_all();
    for h in handles {
        h.join().expect("consistent order must not panic");
    }
}

#[test]
fn try_lock_on_held_lock_returns_none_without_panicking() {
    let m = Mutex::new(1u32);
    let g = m.lock();
    // Same-thread try_lock can't deadlock — it must just fail.
    assert!(m.try_lock().is_none());
    drop(g);
    assert!(m.try_lock().is_some());
}
