//! API-compatible subset of `parking_lot` backed by `std::sync`.
//!
//! The container building this workspace has no crates.io access, so
//! the workspace vendors the small slice of the parking_lot API the
//! code actually uses: non-poisoning `Mutex`/`RwLock` (lock methods
//! return guards directly, no `Result`), and a `Condvar` whose wait
//! methods take the guard by `&mut` instead of by value. Poisoned std
//! locks are recovered with `into_inner`, matching parking_lot's
//! "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---- Mutex ----

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_for can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// ---- RwLock ----

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---- Condvar ----

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, r) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait_for(&mut done, Duration::from_secs(5));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
