//! API-compatible subset of `parking_lot` backed by `std::sync`.
//!
//! The container building this workspace has no crates.io access, so
//! the workspace vendors the small slice of the parking_lot API the
//! code actually uses: non-poisoning `Mutex`/`RwLock` (lock methods
//! return guards directly, no `Result`), and a `Condvar` whose wait
//! methods take the guard by `&mut` instead of by value. Poisoned std
//! locks are recovered with `into_inner`, matching parking_lot's
//! "no poisoning" semantics.

#[cfg(feature = "lock-order")]
pub mod order;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Sentinel key: a per-instance id handed out on first acquisition
/// (`new` is `const fn`, so it cannot allocate one). Instance-keyed so
/// distinct locks acquired through the same generic code never alias;
/// id-keyed (not address-keyed) so moving a lock — including the move
/// into `into_inner` — keeps its identity, and a new lock allocated at
/// a freed lock's address never inherits its order-graph history.
#[cfg(feature = "lock-order")]
fn key_of(slot: &std::sync::atomic::AtomicUsize) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT_ID: AtomicUsize = AtomicUsize::new(1);
    match slot.load(Ordering::Relaxed) {
        0 => {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            match slot.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => id,
                // Another thread assigned first; the unused id leaks,
                // which is harmless (ids are never compared for gaps).
                Err(assigned) => assigned,
            }
        }
        id => id,
    }
}

// ---- Mutex ----

pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    id: std::sync::atomic::AtomicUsize,
    // Must stay last: T may be unsized.
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_for can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(feature = "lock-order")]
    key: usize,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "lock-order")]
            id: std::sync::atomic::AtomicUsize::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        // With the sentinel on, Mutex implements Drop, so the field
        // cannot be moved out directly.
        #[cfg(feature = "lock-order")]
        return {
            let id = self.id.load(std::sync::atomic::Ordering::Relaxed);
            if id != 0 {
                order::forget_lock(id);
            }
            // SAFETY: `self` is forgotten immediately after the field
            // is read out, so `inner` is dropped exactly once (by the
            // caller) and the Drop impl never runs.
            let inner = unsafe { std::ptr::read(&self.inner) };
            std::mem::forget(self);
            match inner.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        };
        #[cfg(not(feature = "lock-order"))]
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Dropping a lock retires its node in the order graph so dead locks
/// do not accumulate edges (ids are never reused, so no ABA).
#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for Mutex<T> {
    fn drop(&mut self) {
        let id = *self.id.get_mut();
        if id != 0 {
            order::forget_lock(id);
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg_attr(feature = "lock-order", track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let (key, site) = {
            let key = key_of(&self.id);
            let site = std::panic::Location::caller();
            order::before_acquire(key, order::Mode::Exclusive, site);
            (key, site)
        };
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        #[cfg(feature = "lock-order")]
        order::after_acquire(key, order::Mode::Exclusive, site);
        MutexGuard {
            inner: Some(g),
            #[cfg(feature = "lock-order")]
            key,
        }
    }

    #[cfg_attr(feature = "lock-order", track_caller)]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-order")]
        let key = {
            let key = key_of(&self.id);
            order::after_try_acquire(key, order::Mode::Exclusive, std::panic::Location::caller());
            key
        };
        Some(MutexGuard {
            inner: Some(g),
            #[cfg(feature = "lock-order")]
            key,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.key);
    }
}

// ---- RwLock ----

pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    id: std::sync::atomic::AtomicUsize,
    // Must stay last: T may be unsized.
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    key: usize,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lock-order")]
    key: usize,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "lock-order")]
            id: std::sync::atomic::AtomicUsize::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        #[cfg(feature = "lock-order")]
        return {
            let id = self.id.load(std::sync::atomic::Ordering::Relaxed);
            if id != 0 {
                order::forget_lock(id);
            }
            // SAFETY: `self` is forgotten immediately after the field
            // is read out, so `inner` is dropped exactly once (by the
            // caller) and the Drop impl never runs.
            let inner = unsafe { std::ptr::read(&self.inner) };
            std::mem::forget(self);
            match inner.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        };
        #[cfg(not(feature = "lock-order"))]
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLock<T> {
    fn drop(&mut self) {
        let id = *self.id.get_mut();
        if id != 0 {
            order::forget_lock(id);
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg_attr(feature = "lock-order", track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let (key, site) = {
            let key = key_of(&self.id);
            let site = std::panic::Location::caller();
            order::before_acquire(key, order::Mode::Shared, site);
            (key, site)
        };
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        #[cfg(feature = "lock-order")]
        order::after_acquire(key, order::Mode::Shared, site);
        RwLockReadGuard {
            inner: g,
            #[cfg(feature = "lock-order")]
            key,
        }
    }

    #[cfg_attr(feature = "lock-order", track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let (key, site) = {
            let key = key_of(&self.id);
            let site = std::panic::Location::caller();
            order::before_acquire(key, order::Mode::Exclusive, site);
            (key, site)
        };
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        #[cfg(feature = "lock-order")]
        order::after_acquire(key, order::Mode::Exclusive, site);
        RwLockWriteGuard {
            inner: g,
            #[cfg(feature = "lock-order")]
            key,
        }
    }

    #[cfg_attr(feature = "lock-order", track_caller)]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-order")]
        let key = {
            let key = key_of(&self.id);
            order::after_try_acquire(key, order::Mode::Shared, std::panic::Location::caller());
            key
        };
        Some(RwLockReadGuard {
            inner: g,
            #[cfg(feature = "lock-order")]
            key,
        })
    }

    #[cfg_attr(feature = "lock-order", track_caller)]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-order")]
        let key = {
            let key = key_of(&self.id);
            order::after_try_acquire(key, order::Mode::Exclusive, std::panic::Location::caller());
            key
        };
        Some(RwLockWriteGuard {
            inner: g,
            #[cfg(feature = "lock-order")]
            key,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.key);
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.key);
    }
}

// ---- Condvar ----

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // The wait releases the mutex: take it off this thread's held
        // stack so the sentinel doesn't count the sleep as a hold, and
        // re-attribute it to its original site on wakeup.
        #[cfg(feature = "lock-order")]
        let site = order::suspend(guard.key);
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        #[cfg(feature = "lock-order")]
        order::resume(guard.key, site);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "lock-order")]
        let site = order::suspend(guard.key);
        let g = guard.inner.take().expect("guard present");
        let (g, r) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        #[cfg(feature = "lock-order")]
        order::resume(guard.key, site);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait_for(&mut done, Duration::from_secs(5));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
