//! The lock-order sentinel (`--features lock-order`).
//!
//! Every blocking acquisition through the shim is checked against a
//! process-wide acquisition-order graph before it can block:
//!
//! - each thread keeps a stack of locks it currently holds;
//! - acquiring B while holding A records the edge A→B, with the two
//!   `#[track_caller]` acquisition sites as the witness;
//! - if the graph already proves a path B→…→A, this acquisition can
//!   deadlock against some observed history — panic *now*, naming the
//!   current site, the held site, and the reverse-order witness,
//!   instead of deadlocking some run later;
//! - re-acquiring a lock this thread already holds panics immediately
//!   (std `Mutex`/`RwLock::write` self-deadlock); a re-entrant
//!   `RwLock::read` is a warning (it deadlocks only when a writer is
//!   queued in between);
//! - releasing a lock held longer than [`LONG_HOLD`] while another
//!   thread is queued on it prints a diagnostic with the holder's site.
//!
//! Locks are keyed by a per-instance id assigned on first
//! acquisition, not by acquisition site, so two engines locked through
//! the same generic code never alias — and not by address, so a new
//! lock allocated where a freed one lived never inherits its history.
//! (An earlier address-keyed version produced exactly that false
//! inversion on the very first full-suite run: a page `RwLock`
//! inherited the edges of a freed PolarFS data mutex at the same
//! address. Ids are monotonic and never reused, so the class is gone.)
//! Dropping a `Mutex`/`RwLock` — or consuming it via `into_inner` —
//! still calls [`forget_lock`] to retire its node, purely to keep the
//! graph from accumulating dead edges.
//!
//! Everything below uses `std::sync` directly (never the shim's own
//! types) so instrumentation cannot recurse into itself.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Mutex as StdMutex, OnceLock};
use std::time::{Duration, Instant};

/// Holding a contended lock longer than this is reported on release.
pub const LONG_HOLD: Duration = Duration::from_millis(100);

/// Known-benign inversions as (held-site, acquire-site) substring
/// pairs, e.g. `("conn.rs:120", "server.rs:300")`. Currently empty:
/// the whole test suite runs inversion-free.
const ALLOWED_INVERSIONS: &[(&str, &str)] = &[];

/// How the lock is being taken; only exclusive-vs-shared matters for
/// double-acquire semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Exclusive,
    Shared,
}

struct HeldLock {
    key: usize,
    site: &'static Location<'static>,
    mode: Mode,
    since: Instant,
}

thread_local! {
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
}

/// First-observed witness for an order edge A→B.
struct Witness {
    held_site: &'static Location<'static>,
    acq_site: &'static Location<'static>,
}

#[derive(Default)]
struct Graph {
    /// key → (successor key → first witness of that ordering).
    edges: HashMap<usize, HashMap<usize, Witness>>,
    /// key → threads currently blocked acquiring it.
    waiters: HashMap<usize, u32>,
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

fn lock_graph() -> std::sync::MutexGuard<'static, Graph> {
    match graph().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Is there a path `from → … → to` in the recorded order?
fn path_exists(g: &Graph, from: usize, to: usize) -> bool {
    let mut stack = vec![from];
    let mut seen = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if let Some(succs) = g.edges.get(&n) {
            for &s in succs.keys() {
                if !seen.contains(&s) {
                    seen.push(s);
                    stack.push(s);
                }
            }
        }
    }
    false
}

fn allowed(held_site: &Location<'_>, acq_site: &Location<'_>) -> bool {
    let h = format!("{}:{}", held_site.file(), held_site.line());
    let a = format!("{}:{}", acq_site.file(), acq_site.line());
    ALLOWED_INVERSIONS
        .iter()
        .any(|(hp, ap)| h.contains(hp) && a.contains(ap))
}

/// Called before a *blocking* acquisition of `key`. Panics on
/// same-thread double acquire and on order inversion; registers the
/// caller as a waiter otherwise.
pub fn before_acquire(key: usize, mode: Mode, site: &'static Location<'static>) {
    HELD.with(|held| {
        let held = held.borrow();
        if let Some(prior) = held.iter().find(|h| h.key == key) {
            if mode == Mode::Exclusive || prior.mode == Mode::Exclusive {
                panic!(
                    "lock-order sentinel: double acquire of lock {key:#x} — \
                     already held ({:?}) since {}, re-acquired ({mode:?}) at {site}; \
                     this self-deadlocks under std::sync",
                    prior.mode, prior.site
                );
            }
            eprintln!(
                "lock-order sentinel: WARNING re-entrant read of lock {key:#x} — \
                 first at {}, again at {site}; deadlocks if a writer queues in between",
                prior.site
            );
        }

        let mut g = lock_graph();
        for h in held.iter().filter(|h| h.key != key) {
            // Record h.key → key, then make sure the reverse order was
            // never observed.
            if path_exists(&g, key, h.key) && !allowed(h.site, site) {
                let witness = g.edges.get(&key).and_then(|s| s.get(&h.key));
                let reverse = match witness {
                    Some(w) => format!(
                        "reverse order witnessed directly: held at {} then acquired at {}",
                        w.held_site, w.acq_site
                    ),
                    None => "reverse order witnessed through intermediate locks".to_string(),
                };
                panic!(
                    "lock-order sentinel: inversion — acquiring lock {key:#x} at {site} \
                     while holding lock {:#x} acquired at {}; {reverse}",
                    h.key, h.site
                );
            }
            g.edges
                .entry(h.key)
                .or_default()
                .entry(key)
                .or_insert(Witness {
                    held_site: h.site,
                    acq_site: site,
                });
        }
        *g.waiters.entry(key).or_insert(0) += 1;
    });
}

/// Called once the acquisition succeeded: move from waiter to holder.
pub fn after_acquire(key: usize, mode: Mode, site: &'static Location<'static>) {
    {
        let mut g = lock_graph();
        if let Some(w) = g.waiters.get_mut(&key) {
            *w = w.saturating_sub(1);
        }
    }
    push_held(key, mode, site);
}

/// Called for successful `try_*` acquisitions. They never block, so
/// they cannot deadlock and are not order-checked — but they do hold
/// the lock, so releases and double-acquire checks must see them.
pub fn after_try_acquire(key: usize, mode: Mode, site: &'static Location<'static>) {
    push_held(key, mode, site);
}

fn push_held(key: usize, mode: Mode, site: &'static Location<'static>) {
    HELD.with(|held| {
        held.borrow_mut().push(HeldLock {
            key,
            site,
            mode,
            since: Instant::now(),
        });
    });
}

/// Called from guard drops. Reports contended long holds.
pub fn on_release(key: usize) {
    let popped = HELD.with(|held| {
        let mut held = held.borrow_mut();
        held.iter()
            .rposition(|h| h.key == key)
            .map(|i| held.remove(i))
    });
    let Some(h) = popped else { return };
    let dur = h.since.elapsed();
    if dur >= LONG_HOLD {
        let queued = lock_graph().waiters.get(&key).copied().unwrap_or(0);
        if queued > 0 {
            eprintln!(
                "lock-order sentinel: WARNING lock {key:#x} held {}ms (acquired at {}) \
                 with {queued} waiter(s) queued — shrink the critical section",
                dur.as_millis(),
                h.site
            );
        }
    }
}

/// The lock instance is being destroyed: drop its node so a future
/// allocation at the same address does not inherit its history.
pub fn forget_lock(key: usize) {
    let mut g = lock_graph();
    g.edges.remove(&key);
    for succs in g.edges.values_mut() {
        succs.remove(&key);
    }
    g.waiters.remove(&key);
}

/// Condvar wait releases the mutex: take its entry off the held stack,
/// returning the original acquisition site for re-attribution.
pub fn suspend(key: usize) -> &'static Location<'static> {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        match held.iter().rposition(|h| h.key == key) {
            Some(i) => held.remove(i).site,
            None => Location::caller(),
        }
    })
}

/// The wait returned and the mutex is re-held; hold timing restarts.
pub fn resume(key: usize, site: &'static Location<'static>) {
    push_held(key, Mode::Exclusive, site);
}
