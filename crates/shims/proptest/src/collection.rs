//! `prop::collection::vec(elem, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct VecStrategy<S> {
    elem: S,
    min: usize,
    max: usize, // exclusive
}

/// Size specifications accepted by [`vec`].
pub trait IntoSizeRange {
    /// (min, exclusive max)
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty size range for collection::vec");
    VecStrategy { elem, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.min + rng.below((self.max - self.min) as u64) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
