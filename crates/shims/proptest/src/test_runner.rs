//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of proptest's config: only the case count matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG seeded from the test name, so failures reproduce.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.next_u64() % n
    }
}
