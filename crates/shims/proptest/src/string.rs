//! Tiny regex-subset string generator: `[class]{m,n}`, `[class]{n}`,
//! `[class]*` / `[class]+`, and literal characters. Enough for the
//! patterns the test-suite uses (e.g. `"[a-z0-9 ]{0,24}"`); anything
//! unparseable falls back to short alphanumeric strings.

use crate::test_runner::TestRng;

enum Piece {
    Literal(char),
    Class {
        chars: Vec<char>,
        min: u32,
        max: u32,
    },
}

fn parse(pattern: &str) -> Option<Vec<Piece>> {
    let mut pieces = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        if c == '[' {
            let mut chars = Vec::new();
            loop {
                let c = it.next()?;
                if c == ']' {
                    break;
                }
                if it.peek() == Some(&'-') {
                    let mut look = it.clone();
                    look.next(); // '-'
                    match look.peek() {
                        Some(&end) if end != ']' => {
                            it = look;
                            let end = it.next()?;
                            for v in c as u32..=end as u32 {
                                chars.push(char::from_u32(v)?);
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                chars.push(c);
            }
            if chars.is_empty() {
                return None;
            }
            let (min, max) = match it.peek() {
                Some('{') => {
                    it.next();
                    let mut spec = String::new();
                    loop {
                        let c = it.next()?;
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
                        None => {
                            let n: u32 = spec.parse().ok()?;
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    it.next();
                    (0, 8)
                }
                Some('+') => {
                    it.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece::Class { chars, min, max });
        } else {
            pieces.push(Piece::Literal(c));
        }
    }
    Some(pieces)
}

pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = match parse(pattern) {
        Some(p) => p,
        None => {
            // Fallback: short alphanumeric.
            let alphabet: Vec<char> = ('a'..='z').chain('0'..='9').collect();
            let len = rng.below(9) as usize;
            return (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect();
        }
    };
    let mut out = String::new();
    for piece in &pieces {
        match piece {
            Piece::Literal(c) => out.push(*c),
            Piece::Class { chars, min, max } => {
                let n = *min + rng.below((*max - *min + 1) as u64) as u32;
                for _ in 0..n {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_counts() {
        let mut rng = TestRng::for_test("class_with_counts");
        for _ in 0..200 {
            let s = generate_matching("[a-z0-9 ]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::for_test("literals");
        assert_eq!(generate_matching("abc", &mut rng), "abc");
    }
}
