//! The `Strategy` trait and combinators (no shrinking).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe carrier for heterogeneous strategies (`prop_oneof!`).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---- ranges as strategies ----

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

// ---- tuples of strategies ----

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $i:tt),+))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

// ---- string strategies from simplified regexes ----

/// `&str` is a strategy: the pattern is parsed by [`crate::string`]
/// (supports the `[class]{m,n}` subset).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
