//! API-compatible subset of `proptest` for offline builds (see the
//! workspace manifest for the policy).
//!
//! Differences from the real crate, deliberately accepted:
//! * no shrinking — a failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample;
//! * regex string strategies support only the `[class]{m,n}` shape the
//!   tests use (character classes with ranges and literals);
//! * generation is deterministic per test (seeded from the test name),
//!   so failures reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    /// The real proptest prelude re-exports the crate root as `prop`
    /// so tests can write `prop::collection::vec(...)`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assertion macros: the real ones return `Err(TestCaseError)` to feed
/// the shrinker; without shrinking a panic carries the same
/// information.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// `prop_oneof![s1, s2, ...]`: uniform choice between strategies that
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest! { ... }` block: expands each contained
/// `#[test] fn name(arg in strategy, ...) { body }` into a plain test
/// that runs the body for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}
