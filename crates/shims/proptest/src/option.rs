//! `prop::option::of(strategy)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match real proptest's default: None with probability 1/4... a
        // fixed 25% keeps both arms well-exercised.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
