//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.next_f64() * 1e15;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
