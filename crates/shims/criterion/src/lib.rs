//! API-compatible subset of `criterion` for offline builds (see the
//! workspace manifest). No statistics engine: each `bench_function`
//! warms up, then runs timed batches for the configured measurement
//! window and reports the median batch's ns/iter to stdout.

use std::time::{Duration, Instant};

/// `cargo bench -- --test` runs each benchmark body once and skips the
/// timing loops — the smoke mode real criterion provides, used by CI to
/// keep bench binaries compiling *and running*.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let test_only = test_mode();
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            ns_per_iter: Vec::new(),
            test_only,
        };
        f(&mut b);
        if test_only {
            println!("{name:<32} ok (--test: ran once)");
            return self;
        }
        let mut samples = b.ns_per_iter;
        if samples.is_empty() {
            println!("{name:<32} (no samples)");
            return self;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!("{name:<32} {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1})");
        self
    }
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    ns_per_iter: Vec<f64>,
    test_only: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_only {
            black_box(f());
            return;
        }
        // Warm-up, and calibrate how many iterations fill one sample.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.ns_per_iter.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

/// Opaque value barrier (same contract as criterion's re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// `criterion_group!` in both its struct-ish and positional forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
