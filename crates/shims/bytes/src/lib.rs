//! API-compatible subset of the `bytes` crate: an immutable,
//! cheaply-cloneable byte buffer. Offline shim — see the workspace
//! manifest for the policy.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[range].into(),
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2u8, 3]));
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
    }
}
