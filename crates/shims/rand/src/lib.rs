//! API-compatible subset of `rand` 0.8 for offline builds (see the
//! workspace manifest). Provides `rngs::StdRng`, `SeedableRng`, and an
//! `Rng` trait with `gen_range` / `gen` / `gen_bool` over the integer
//! and float types the workloads use. The generator is xoshiro256**,
//! seeded via SplitMix64 — deterministic for a given seed, which is
//! all the benches and workload generators rely on.

/// Minimal core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types with uniform sampling over `[lo, hi)` / `[lo, hi]`.
///
/// Mirrors rand's structure: `SampleRange` has one generic impl per
/// range shape, so type inference can unify the range's element type
/// with the call-site context (e.g. `i64 + rng.gen_range(0..10)`).
pub trait SampleUniform: Sized + Copy {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R, lo: $t, hi: $t, inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128
                    + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range in gen_range");
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R, lo: $t, hi: $t, _inclusive: bool,
            ) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

/// Range shapes accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// The `Standard` distribution stand-in for `rng.gen::<T>()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing convenience methods, blanket-implemented like in rand.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, as in rand.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 (the classic Blackman/Vigna
    /// construction) — fast, uniform enough for workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A non-deterministic generator seeded from the OS clock + a process
/// counter (`rand::thread_rng` stand-in; rarely used here).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(t ^ COUNTER.fetch_add(0x9E37, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-30i64..31);
            assert!((-30..31).contains(&v));
            let f = rng.gen_range(1.0f64..5.0);
            assert!((1.0..5.0).contains(&f));
            let i = rng.gen_range(1usize..=7);
            assert!((1..=7).contains(&i));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} off");
        }
    }
}
