//! API-compatible stand-in for the `epoll` crate: a thin, safe,
//! **level-triggered** readiness API over the kernel's
//! `epoll_create1`/`epoll_ctl`/`epoll_wait`.
//!
//! The container building this workspace has no crates.io access (and
//! hence no `libc` crate), so the syscall wrappers are declared
//! directly against the C library the binary already links — the same
//! offline-shim idiom as the other crates under `crates/shims/`. On
//! non-Linux Unix the same [`Poller`] API is emulated with POSIX
//! `poll(2)`, trading the O(ready) wakeup for O(registered) — correct,
//! just slower at high fd counts.
//!
//! Interest is **level-triggered** on purpose: the reactor re-reads
//! until `WouldBlock`, and a level-triggered poller re-reports
//! readiness it has not consumed, which removes the classic
//! edge-trigger starvation bugs at the cost of a few spurious wakeups.

use std::io;
use std::os::unix::io::RawFd;

/// What to watch an fd for. Hangup/error conditions are always
/// reported regardless of the requested interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Park the fd: keep it registered but report only hangup/error.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hung up or the fd is in an error state; the owner should
    /// read to EOF / tear the connection down.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel ABI: packed on x86-64 only (a historical accident the
    /// real libc crate mirrors the same way).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Poller {
        epfd: RawFd,
        /// Scratch event buffer reused across waits.
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; the flag is the
            // documented EPOLL_CLOEXEC constant and the returned fd is
            // validated by cvt before use.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            let evp = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            // SAFETY: `evp` is either null (DEL, where the kernel
            // ignores it) or points at `ev`, which lives on this stack
            // frame for the whole call; epfd was returned by
            // epoll_create1 and is owned by self.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, evp) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let n = loop {
                // SAFETY: the out-pointer and capacity describe
                // `self.buf`, which outlives the call and is never
                // resized while waiting; the kernel writes at most
                // `len` events, and only the first `n` are read back.
                match cvt(unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.buf[..n] {
                // Unaligned-safe copies: the struct is packed on x86-64.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1, is owned solely by
            // this Poller, and Drop runs at most once — no double
            // close, and no other handle aliases it.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll(2)`-backed emulation: the registration table is rebuilt
    /// into a pollfd array on every wait. O(registered fds), fine for
    /// the non-Linux dev case this fallback exists for.
    pub struct Poller {
        fds: Vec<(RawFd, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { fds: Vec::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.fds.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            self.fds.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.fds.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.fds.len();
            self.fds.retain(|(f, _, _)| *f != fd);
            if self.fds.len() == before {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let mut pfds: Vec<PollFd> = self
                .fds
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                // SAFETY: the pointer/len pair describes `pfds`, a
                // live Vec whose length is not changed during the
                // call; poll only writes the `revents` field of each
                // element.
                let ret = unsafe { poll(pfds.as_mut_ptr(), pfds.len() as u64, timeout_ms) };
                if ret >= 0 {
                    break ret as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for (pfd, (_, token, _)) in pfds.iter().zip(&self.fds) {
                if pfd.revents != 0 {
                    out.push(Event {
                        token: *token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        // POLLNVAL (stale/closed fd) maps to hangup so
                        // the owner tears the registration down —
                        // otherwise the dead slot re-reports instantly
                        // forever and the wait loop spins at 100% CPU.
                        hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                    });
                }
            }
            Ok(n)
        }
    }
}

/// A readiness poller: register fds with a `u64` token, then
/// [`Poller::wait`] for events. Level-triggered; see the module docs.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Start watching `fd`. The token comes back verbatim in events.
    /// The caller keeps ownership of the fd and must [`Poller::delete`]
    /// it before closing it.
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Replace the interest set (and token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stop watching a registered fd.
    pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Block up to `timeout_ms` (-1 = forever, 0 = poll) and append
    /// ready events to `out`. Returns the number of ready fds; 0 means
    /// the timeout elapsed.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        self.inner.wait(out, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_and_is_level_triggered() {
        let (a, mut b) = pair();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0, "no data yet");

        b.write_all(b"x").unwrap();
        events.clear();
        assert_eq!(p.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unconsumed data re-reports.
        events.clear();
        assert_eq!(p.wait(&mut events, 0).unwrap(), 1);

        // Consumed: silent again.
        let mut buf = [0u8; 8];
        let _ = (&a).read(&mut buf).unwrap();
        events.clear();
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0);
        p.delete(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest() {
        let (a, mut b) = pair();
        let mut p = Poller::new().unwrap();
        // A fresh socket is writable but not readable.
        p.add(a.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        assert_eq!(p.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].writable && !events[0].readable);

        // Park it: pending inbound data must not wake us.
        p.modify(a.as_raw_fd(), 1, Interest::NONE).unwrap();
        b.write_all(b"y").unwrap();
        events.clear();
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0, "parked fd stays quiet");

        // Re-arm reads: the same data now reports.
        p.modify(a.as_raw_fd(), 2, Interest::READ).unwrap();
        events.clear();
        assert_eq!(p.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 2, "token travels with modify");
        assert!(events[0].readable);
    }

    #[test]
    fn hangup_reports_on_peer_close() {
        let (a, b) = pair();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(b);
        let mut events = Vec::new();
        assert_eq!(p.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].hangup, "peer close must report hangup");
    }

    #[test]
    fn many_fds_wake_only_the_ready_one() {
        let mut p = Poller::new().unwrap();
        let pairs: Vec<(UnixStream, UnixStream)> = (0..64).map(|_| pair()).collect();
        for (i, (a, _)) in pairs.iter().enumerate() {
            p.add(a.as_raw_fd(), i as u64, Interest::READ).unwrap();
        }
        (&pairs[41].1).write_all(b"ping").unwrap();
        let mut events = Vec::new();
        assert_eq!(p.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 41);
    }

    #[test]
    fn delete_then_close_is_clean() {
        let (a, _b) = pair();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 0, Interest::READ).unwrap();
        p.delete(a.as_raw_fd()).unwrap();
        assert!(p.delete(a.as_raw_fd()).is_err(), "double delete errors");
        let mut events = Vec::new();
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0);
    }
}
