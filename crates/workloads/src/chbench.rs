//! CH-benCHmark-like hybrid workload (paper §8.1, Fig. 10): TPC-C-style
//! transactions (NewOrder, Payment) and analytical queries over the
//! same schema.

use imci_cluster::Cluster;
use imci_common::{Result, Value};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The CH-bench table set, scaled by warehouse count.
pub struct ChBench {
    /// Number of warehouses (the scale factor).
    pub warehouses: i64,
    /// Items in the catalog.
    pub items: i64,
    /// Customers per district.
    pub customers_per_district: i64,
    next_order: Arc<AtomicI64>,
}

/// TPC-C-ish DDL with column indexes on the analytics-relevant tables.
pub fn ddl() -> Vec<&'static str> {
    vec![
        "CREATE TABLE warehouse (w_id INT NOT NULL, w_name VARCHAR(10), w_tax DOUBLE, w_ytd DOUBLE,
          PRIMARY KEY(w_id), KEY COLUMN_INDEX(w_id, w_name, w_tax, w_ytd))",
        "CREATE TABLE district (d_id INT NOT NULL, d_w_id INT, d_tax DOUBLE, d_ytd DOUBLE, d_next_o INT,
          PRIMARY KEY(d_id), KEY d_w(d_w_id), KEY COLUMN_INDEX(d_id, d_w_id, d_tax, d_ytd, d_next_o))",
        "CREATE TABLE chcustomer (c_id INT NOT NULL, c_d_id INT, c_w_id INT, c_balance DOUBLE,
          c_ytd_payment DOUBLE, c_payment_cnt INT, c_last VARCHAR(16),
          PRIMARY KEY(c_id), KEY c_d(c_d_id), KEY c_w(c_w_id),
          KEY COLUMN_INDEX(c_id, c_d_id, c_w_id, c_balance, c_ytd_payment, c_payment_cnt, c_last))",
        "CREATE TABLE chitem (i_id INT NOT NULL, i_name VARCHAR(24), i_price DOUBLE,
          PRIMARY KEY(i_id), KEY COLUMN_INDEX(i_id, i_name, i_price))",
        "CREATE TABLE chstock (s_id INT NOT NULL, s_i_id INT, s_w_id INT, s_quantity INT, s_ytd INT,
          PRIMARY KEY(s_id), KEY s_i(s_i_id), KEY s_w(s_w_id),
          KEY COLUMN_INDEX(s_id, s_i_id, s_w_id, s_quantity, s_ytd))",
        "CREATE TABLE chorder (o_id INT NOT NULL, o_d_id INT, o_w_id INT, o_c_id INT,
          o_entry_d DATE, o_ol_cnt INT,
          PRIMARY KEY(o_id), KEY o_c(o_c_id), KEY o_w(o_w_id),
          KEY COLUMN_INDEX(o_id, o_d_id, o_w_id, o_c_id, o_entry_d, o_ol_cnt))",
        "CREATE TABLE order_line (ol_id INT NOT NULL, ol_o_id INT, ol_d_id INT, ol_w_id INT,
          ol_i_id INT, ol_quantity INT, ol_amount DOUBLE,
          PRIMARY KEY(ol_id), KEY ol_o(ol_o_id), KEY ol_i(ol_i_id),
          KEY COLUMN_INDEX(ol_id, ol_o_id, ol_d_id, ol_w_id, ol_i_id, ol_quantity, ol_amount))",
    ]
}

/// The analytical side: CH-bench-style queries in our dialect.
pub fn analytical_queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "CH-Q1",
            "SELECT ol_d_id, SUM(ol_quantity), SUM(ol_amount), AVG(ol_amount), COUNT(*) \
                   FROM order_line GROUP BY ol_d_id ORDER BY ol_d_id"
                .into(),
        ),
        (
            "CH-Q3",
            "SELECT o_id, SUM(ol_amount) AS revenue FROM chcustomer, chorder, order_line \
                   WHERE c_id = o_c_id AND ol_o_id = o_id AND c_balance < 0 \
                   GROUP BY o_id ORDER BY revenue DESC LIMIT 10"
                .into(),
        ),
        (
            "CH-Q5",
            "SELECT s_w_id, SUM(ol_amount) AS revenue FROM order_line, chstock \
                   WHERE ol_i_id = s_i_id GROUP BY s_w_id ORDER BY revenue DESC"
                .into(),
        ),
        (
            "CH-Q6",
            "SELECT SUM(ol_amount) FROM order_line WHERE ol_quantity BETWEEN 1 AND 10".into(),
        ),
        (
            "CH-Q12",
            "SELECT o_ol_cnt, COUNT(*) FROM chorder, order_line \
                    WHERE ol_o_id = o_id AND ol_quantity > 5 \
                    GROUP BY o_ol_cnt ORDER BY o_ol_cnt"
                .into(),
        ),
    ]
}

impl ChBench {
    /// Create + populate the tables.
    pub fn setup(cluster: &Cluster, warehouses: i64) -> Result<ChBench> {
        for stmt in ddl() {
            cluster.execute(stmt)?;
        }
        let items = 1000.max(warehouses * 100);
        let customers_per_district = 30;
        let rw = cluster.rw().expect("RW node is up");
        let mut txn = rw.begin();
        for w in 0..warehouses {
            rw.insert(
                &mut txn,
                "warehouse",
                vec![
                    Value::Int(w),
                    Value::Str(format!("wh{w}")),
                    Value::Double(0.1),
                    Value::Double(0.0),
                ],
            )?;
            for d in 0..10 {
                let d_id = w * 10 + d;
                rw.insert(
                    &mut txn,
                    "district",
                    vec![
                        Value::Int(d_id),
                        Value::Int(w),
                        Value::Double(0.05),
                        Value::Double(0.0),
                        Value::Int(0),
                    ],
                )?;
                for c in 0..customers_per_district {
                    let c_id = d_id * 1000 + c;
                    rw.insert(
                        &mut txn,
                        "chcustomer",
                        vec![
                            Value::Int(c_id),
                            Value::Int(d_id),
                            Value::Int(w),
                            Value::Double(if c % 9 == 0 { -10.0 } else { 100.0 }),
                            Value::Double(10.0),
                            Value::Int(1),
                            Value::Str(format!("LAST{}", c % 10)),
                        ],
                    )?;
                }
            }
        }
        for i in 0..items {
            rw.insert(
                &mut txn,
                "chitem",
                vec![
                    Value::Int(i),
                    Value::Str(format!("item{i}")),
                    Value::Double(1.0 + (i % 100) as f64),
                ],
            )?;
        }
        for w in 0..warehouses {
            for i in 0..items {
                rw.insert(
                    &mut txn,
                    "chstock",
                    vec![
                        Value::Int(w * items + i),
                        Value::Int(i),
                        Value::Int(w),
                        Value::Int(100),
                        Value::Int(0),
                    ],
                )?;
            }
        }
        rw.commit(txn).unwrap();
        Ok(ChBench {
            warehouses,
            items,
            customers_per_district,
            next_order: Arc::new(AtomicI64::new(0)),
        })
    }

    /// One NewOrder transaction: insert an order + 5..15 order lines and
    /// decrement stock. Returns the number of order lines.
    pub fn new_order(&self, cluster: &Cluster, rng: &mut StdRng) -> Result<usize> {
        let rw = cluster.rw().expect("RW node is up");
        let w = rng.gen_range(0..self.warehouses);
        let d = w * 10 + rng.gen_range(0..10);
        let c = d * 1000 + rng.gen_range(0..self.customers_per_district);
        let o_id = self.next_order.fetch_add(1, Ordering::SeqCst);
        let n_lines = rng.gen_range(5..=15);
        let mut txn = rw.begin();
        rw.insert(
            &mut txn,
            "chorder",
            vec![
                Value::Int(o_id),
                Value::Int(d),
                Value::Int(w),
                Value::Int(c),
                Value::Date(10_000 + (o_id % 365)),
                Value::Int(n_lines as i64),
            ],
        )?;
        for l in 0..n_lines {
            let i = rng.gen_range(0..self.items);
            rw.insert(
                &mut txn,
                "order_line",
                vec![
                    Value::Int(o_id * 16 + l as i64),
                    Value::Int(o_id),
                    Value::Int(d),
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.gen_range(1..=10)),
                    Value::Double(rng.gen_range(1.0..300.0)),
                ],
            )?;
            // stock update
            let s_id = w * self.items + i;
            if let Some(mut row) = rw.get_row("chstock", s_id)? {
                let q = row.values[3].as_int().unwrap_or(100);
                row.values[3] = Value::Int(if q <= 10 { 100 } else { q - 1 });
                row.values[4] = Value::Int(row.values[4].as_int().unwrap_or(0) + 1);
                rw.update(&mut txn, "chstock", s_id, row.values)?;
            }
        }
        rw.commit(txn).unwrap();
        Ok(n_lines)
    }

    /// One Payment transaction: update a customer balance + district ytd.
    pub fn payment(&self, cluster: &Cluster, rng: &mut StdRng) -> Result<()> {
        let rw = cluster.rw().expect("RW node is up");
        let w = rng.gen_range(0..self.warehouses);
        let d = w * 10 + rng.gen_range(0..10);
        let c = d * 1000 + rng.gen_range(0..self.customers_per_district);
        let amount = rng.gen_range(1.0..5000.0);
        let mut txn = rw.begin();
        if let Some(mut row) = rw.get_row("chcustomer", c)? {
            row.values[3] = Value::Double(row.values[3].as_f64().unwrap_or(0.0) - amount);
            row.values[4] = Value::Double(row.values[4].as_f64().unwrap_or(0.0) + amount);
            row.values[5] = Value::Int(row.values[5].as_int().unwrap_or(0) + 1);
            rw.update(&mut txn, "chcustomer", c, row.values)?;
        }
        if let Some(mut row) = rw.get_row("district", d)? {
            row.values[3] = Value::Double(row.values[3].as_f64().unwrap_or(0.0) + amount);
            rw.update(&mut txn, "district", d, row.values)?;
        }
        rw.commit(txn).unwrap();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_cluster::ClusterConfig;
    use rand::SeedableRng;

    #[test]
    fn setup_and_transactions() {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 0,
            group_cap: 64,
            ..Default::default()
        });
        let ch = ChBench::setup(&cluster, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut lines = 0;
        for _ in 0..10 {
            lines += ch.new_order(&cluster, &mut rng).unwrap();
            ch.payment(&cluster, &mut rng).unwrap();
        }
        assert_eq!(cluster.rw().unwrap().row_count("chorder").unwrap(), 10);
        assert_eq!(
            cluster.rw().unwrap().row_count("order_line").unwrap(),
            lines
        );
    }

    #[test]
    fn analytical_queries_parse() {
        for (name, sql) in analytical_queries() {
            imci_sql::parse(&sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
