//! Synthetic production workloads matching Table 2's aggregates
//! (Fig. 15 / Table 3).
//!
//! The paper reports only aggregate schema/query statistics for the
//! four customers (finance, logistics, video marketing, gaming). Each
//! profile below synthesizes a workload reproducing those aggregates at
//! a configurable scale: table count (scaled), average column count,
//! average joins per query, and average operators per plan.

use imci_cluster::Cluster;
use imci_common::{Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One customer profile (a row of Table 2, scaled down).
#[derive(Debug, Clone)]
pub struct Profile {
    /// Customer name / vertical.
    pub name: &'static str,
    /// Tables to create (Table 2 reports 997/165/681/153 — scaled).
    pub n_tables: usize,
    /// Average columns per table (11.2 / 27.2 / 29.9 / 13.5).
    pub avg_cols: usize,
    /// Rows per table at scale 1.0.
    pub rows_per_table: i64,
    /// Queries to generate (96 / 311 / 105 / 106 — scaled).
    pub n_queries: usize,
    /// Average joins per query (2.0 / 1.3 / 1.7 / 9.0).
    pub avg_joins: f64,
    /// Fraction of queries that are full-scan aggregations (drives the
    /// share of large speed-ups seen in Table 3).
    pub scan_heavy_fraction: f64,
}

/// The four Table 2 profiles at reproduction scale.
pub fn profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "Cust1-Finance",
            n_tables: 10,
            avg_cols: 11,
            rows_per_table: 4000,
            n_queries: 12,
            avg_joins: 2.0,
            scan_heavy_fraction: 0.25,
        },
        Profile {
            name: "Cust2-Logistics",
            n_tables: 8,
            avg_cols: 27,
            rows_per_table: 1500,
            n_queries: 16,
            avg_joins: 1.3,
            scan_heavy_fraction: 0.15,
        },
        Profile {
            name: "Cust3-VideoMarketing",
            n_tables: 9,
            avg_cols: 30,
            rows_per_table: 3000,
            n_queries: 10,
            avg_joins: 1.7,
            scan_heavy_fraction: 0.75,
        },
        Profile {
            name: "Cust4-Gaming",
            n_tables: 6,
            avg_cols: 13,
            rows_per_table: 2500,
            n_queries: 10,
            avg_joins: 4.0, // paper: 9.0 — capped by our planner's greedy order
            scan_heavy_fraction: 0.9,
        },
    ]
}

/// A generated workload: DDL done, data loaded, query list ready.
pub struct GeneratedWorkload {
    /// Profile it came from.
    pub profile: Profile,
    /// Table names.
    pub tables: Vec<String>,
    /// (query name, SQL).
    pub queries: Vec<(String, String)>,
}

/// Create tables, load rows, and generate the query set for a profile.
/// `prefix` keeps multiple profiles apart in one cluster.
pub fn generate(
    cluster: &Cluster,
    profile: &Profile,
    prefix: &str,
    scale: f64,
    seed: u64,
) -> Result<GeneratedWorkload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tables = Vec::with_capacity(profile.n_tables);
    let rows = ((profile.rows_per_table as f64 * scale) as i64).max(50);
    for t in 0..profile.n_tables {
        let name = format!("{prefix}_t{t}");
        // id + (avg_cols-1) value columns: a fk, ints, doubles, strings.
        let mut cols = String::from("id INT NOT NULL");
        let mut ci = String::from("id");
        for c in 1..profile.avg_cols {
            let (cname, ty) = match c % 4 {
                0 => (format!("s{c}"), "VARCHAR(24)"),
                1 => (format!("fk{c}"), "INT"),
                2 => (format!("m{c}"), "DOUBLE"),
                _ => (format!("v{c}"), "INT"),
            };
            cols.push_str(&format!(", {cname} {ty}"));
            ci.push_str(&format!(", {cname}"));
        }
        cluster.execute(&format!(
            "CREATE TABLE {name} ({cols}, PRIMARY KEY(id), KEY fk_idx_{t}(fk1), KEY COLUMN_INDEX({ci}))"
        ))?;
        let rw = cluster.rw().expect("RW node is up");
        let mut txn = rw.begin();
        for i in 0..rows {
            let mut vals = vec![Value::Int(i)];
            for c in 1..profile.avg_cols {
                vals.push(match c % 4 {
                    0 => Value::Str(format!("w{}", i % 40)),
                    1 => Value::Int(i % rows.max(1)), // fk into sibling
                    2 => Value::Double(rng.gen_range(0.0..1000.0)),
                    _ => Value::Int(rng.gen_range(0..100)),
                });
            }
            rw.insert(&mut txn, &name, vals)?;
        }
        rw.commit(txn).unwrap();
        tables.push(name);
    }

    // Queries: mixture of scan-heavy aggregations and point-ish lookups,
    // with join chains matching avg_joins.
    let mut queries = Vec::with_capacity(profile.n_queries);
    for q in 0..profile.n_queries {
        let scan_heavy = (q as f64 / profile.n_queries as f64) < profile.scan_heavy_fraction;
        let joins = if rng.gen::<f64>() < profile.avg_joins.fract() {
            profile.avg_joins.ceil() as usize
        } else {
            profile.avg_joins.floor() as usize
        }
        .min(tables.len() - 1);
        let base = &tables[q % tables.len()];
        let mut sql = format!("SELECT t0.v3, COUNT(*), SUM(t0.m2) FROM {base} t0");
        for j in 1..=joins {
            let other = &tables[(q + j) % tables.len()];
            sql.push_str(&format!(" JOIN {other} t{j} ON t{}.fk1 = t{j}.id", j - 1));
        }
        if scan_heavy {
            sql.push_str(" WHERE t0.v3 >= 0 GROUP BY t0.v3 ORDER BY 2 DESC LIMIT 50");
        } else {
            let hot = rng.gen_range(0..rows.max(1));
            sql.push_str(&format!(
                " WHERE t0.id BETWEEN {hot} AND {} GROUP BY t0.v3 ORDER BY t0.v3",
                hot + 50
            ));
        }
        queries.push((format!("{}-Q{}", profile.name, q + 1), sql));
    }
    Ok(GeneratedWorkload {
        profile: profile.clone(),
        tables,
        queries,
    })
}

/// Table 2-style aggregate statistics of a generated workload.
pub fn table2_stats(wl: &GeneratedWorkload) -> String {
    let avg_joins: f64 = wl
        .queries
        .iter()
        .map(|(_, sql)| sql.matches(" JOIN ").count() as f64)
        .sum::<f64>()
        / wl.queries.len() as f64;
    format!(
        "{}\ttables={}\tavg_cols={}\tqueries={}\tavg_joins={:.1}",
        wl.profile.name,
        wl.tables.len(),
        wl.profile.avg_cols,
        wl.queries.len(),
        avg_joins
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_cluster::ClusterConfig;

    #[test]
    fn generate_smallest_profile() {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 0,
            group_cap: 64,
            ..Default::default()
        });
        let p = Profile {
            name: "mini",
            n_tables: 3,
            avg_cols: 8,
            rows_per_table: 60,
            n_queries: 4,
            avg_joins: 1.0,
            scan_heavy_fraction: 0.5,
        };
        let wl = generate(&cluster, &p, "mini", 1.0, 42).unwrap();
        assert_eq!(wl.tables.len(), 3);
        assert_eq!(wl.queries.len(), 4);
        for (name, sql) in &wl.queries {
            imci_sql::parse(sql).unwrap_or_else(|e| panic!("{name}: {e}\n{sql}"));
        }
        let stats = table2_stats(&wl);
        assert!(stats.contains("tables=3"));
    }

    #[test]
    fn four_profiles_defined() {
        let ps = profiles();
        assert_eq!(ps.len(), 4);
        assert!(ps.iter().any(|p| p.name.contains("Finance")));
    }
}
