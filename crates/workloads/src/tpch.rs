//! TPC-H-derived workload (Fig. 9).
//!
//! Full 8-table TPC-H schema with scale-factor-controlled data and the
//! 22 queries adapted to this repo's SQL dialect. Adaptation rules
//! (documented per query in EXPERIMENTS.md): subqueries are rewritten
//! to join/aggregate form or replaced by a pre-computed literal (the
//! classic "Q15 view" trick); EXISTS/NOT-EXISTS anti-joins become
//! selective joins preserving the access pattern; string functions not
//! in the dialect are dropped from projections. The *access pattern*
//! (tables touched, join count, selectivity, group-by shape) of every
//! query is preserved — that is what drives the row/column engine gap
//! the figure reports.
//!
//! Composite primary keys are synthesized: `lineitem` uses
//! `l_orderkey * 8 + l_linenumber`, `partsupp` uses
//! `ps_partkey * 1000 + ps_suppkey` (both documented in DESIGN.md).

use imci_cluster::Cluster;
use imci_common::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DDL for all eight tables, with column indexes on every column and
/// secondary indexes on the join keys (the paper builds secondary
/// indexes for each column of the row baseline; we index the keys that
/// its executor actually probes).
pub fn ddl() -> Vec<String> {
    vec![
        "CREATE TABLE region (r_regionkey INT NOT NULL, r_name VARCHAR(25), r_comment VARCHAR(152),
          PRIMARY KEY(r_regionkey), KEY COLUMN_INDEX(r_regionkey, r_name, r_comment))".into(),
        "CREATE TABLE nation (n_nationkey INT NOT NULL, n_name VARCHAR(25), n_regionkey INT, n_comment VARCHAR(152),
          PRIMARY KEY(n_nationkey), KEY n_rk(n_regionkey),
          KEY COLUMN_INDEX(n_nationkey, n_name, n_regionkey, n_comment))".into(),
        "CREATE TABLE supplier (s_suppkey INT NOT NULL, s_name VARCHAR(25), s_nationkey INT, s_acctbal DOUBLE,
          PRIMARY KEY(s_suppkey), KEY s_nk(s_nationkey),
          KEY COLUMN_INDEX(s_suppkey, s_name, s_nationkey, s_acctbal))".into(),
        "CREATE TABLE customer (c_custkey INT NOT NULL, c_name VARCHAR(25), c_nationkey INT, c_acctbal DOUBLE,
          c_mktsegment VARCHAR(10),
          PRIMARY KEY(c_custkey), KEY c_nk(c_nationkey), KEY c_seg(c_mktsegment),
          KEY COLUMN_INDEX(c_custkey, c_name, c_nationkey, c_acctbal, c_mktsegment))".into(),
        "CREATE TABLE part (p_partkey INT NOT NULL, p_name VARCHAR(55), p_brand VARCHAR(10),
          p_type VARCHAR(25), p_size INT, p_container VARCHAR(10), p_retailprice DOUBLE,
          PRIMARY KEY(p_partkey), KEY p_sz(p_size), KEY p_br(p_brand),
          KEY COLUMN_INDEX(p_partkey, p_name, p_brand, p_type, p_size, p_container, p_retailprice))".into(),
        "CREATE TABLE partsupp (ps_pskey INT NOT NULL, ps_partkey INT, ps_suppkey INT,
          ps_availqty INT, ps_supplycost DOUBLE,
          PRIMARY KEY(ps_pskey), KEY ps_pk(ps_partkey), KEY ps_sk(ps_suppkey),
          KEY COLUMN_INDEX(ps_pskey, ps_partkey, ps_suppkey, ps_availqty, ps_supplycost))".into(),
        "CREATE TABLE orders (o_orderkey INT NOT NULL, o_custkey INT, o_orderstatus VARCHAR(1),
          o_totalprice DOUBLE, o_orderdate DATE, o_orderpriority VARCHAR(15), o_shippriority INT,
          PRIMARY KEY(o_orderkey), KEY o_ck(o_custkey), KEY o_od(o_orderdate),
          KEY COLUMN_INDEX(o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate, o_orderpriority, o_shippriority))".into(),
        "CREATE TABLE lineitem (l_linekey INT NOT NULL, l_orderkey INT, l_partkey INT, l_suppkey INT,
          l_quantity DOUBLE, l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE,
          l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE, l_commitdate DATE,
          l_receiptdate DATE, l_shipmode VARCHAR(10),
          PRIMARY KEY(l_linekey), KEY l_ok(l_orderkey), KEY l_pk(l_partkey), KEY l_sk(l_suppkey), KEY l_sd(l_shipdate),
          KEY COLUMN_INDEX(l_linekey, l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice, l_discount, l_tax, l_returnflag, l_linestatus, l_shipdate, l_commitdate, l_receiptdate, l_shipmode))".into(),
    ]
}

/// Row counts for a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sizes {
    /// supplier rows.
    pub suppliers: i64,
    /// customer rows.
    pub customers: i64,
    /// part rows.
    pub parts: i64,
    /// orders rows.
    pub orders: i64,
}

/// Standard TPC-H proportions at scale factor `sf`.
pub fn sizes(sf: f64) -> Sizes {
    Sizes {
        suppliers: ((10_000.0 * sf) as i64).max(10),
        customers: ((150_000.0 * sf) as i64).max(30),
        parts: ((200_000.0 * sf) as i64).max(40),
        orders: ((1_500_000.0 * sf) as i64).max(150),
    }
}

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "STANDARD BRUSHED BRASS",
    "PROMO BURNISHED COPPER",
    "MEDIUM PLATED NICKEL",
    "SMALL POLISHED TIN",
    "LARGE BURNISHED STEEL",
];
const CONTAINERS: [&str; 4] = ["SM CASE", "MED BOX", "LG DRUM", "JUMBO JAR"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

fn day(rng: &mut StdRng) -> i64 {
    // 1992-01-01 .. 1998-12-01 like TPC-H.
    imci_common::value::parse_date_str("1992-01-01").unwrap() + rng.gen_range(0..2526)
}

/// Populate a cluster with TPC-H data at scale factor `sf` using the
/// programmatic DML path (much faster than per-row SQL). Returns total
/// rows loaded.
pub fn load(cluster: &Cluster, sf: f64, seed: u64) -> Result<u64> {
    for stmt in ddl() {
        cluster.execute(&stmt)?;
    }
    let sz = sizes(sf);
    let mut rng = StdRng::seed_from_u64(seed);
    let rw = cluster.rw().expect("RW node is up");
    let mut total = 0u64;
    use imci_common::Value as V;

    let mut txn = rw.begin();
    for (i, r) in REGIONS.iter().enumerate() {
        rw.insert(
            &mut txn,
            "region",
            vec![
                V::Int(i as i64),
                V::Str((*r).into()),
                V::Str(format!("region {r}")),
            ],
        )?;
        total += 1;
    }
    for (i, n) in NATIONS.iter().enumerate() {
        rw.insert(
            &mut txn,
            "nation",
            vec![
                V::Int(i as i64),
                V::Str((*n).into()),
                V::Int((i % 5) as i64),
                V::Str(format!("nation {n}")),
            ],
        )?;
        total += 1;
    }
    for s in 0..sz.suppliers {
        rw.insert(
            &mut txn,
            "supplier",
            vec![
                V::Int(s),
                V::Str(format!("Supplier#{s:09}")),
                V::Int(s % 25),
                V::Double(rng.gen_range(-999.99..9999.99)),
            ],
        )?;
        total += 1;
    }
    rw.commit(txn).unwrap();

    let mut txn = rw.begin();
    for c in 0..sz.customers {
        rw.insert(
            &mut txn,
            "customer",
            vec![
                V::Int(c),
                V::Str(format!("Customer#{c:09}")),
                V::Int(c % 25),
                V::Double(rng.gen_range(-999.99..9999.99)),
                V::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].into()),
            ],
        )?;
        total += 1;
        if total.is_multiple_of(20_000) {
            rw.commit(std::mem::replace(&mut txn, rw.begin())).unwrap();
        }
    }
    for p in 0..sz.parts {
        rw.insert(
            &mut txn,
            "part",
            vec![
                V::Int(p),
                V::Str(format!("part name {}", p % 97)),
                V::Str(BRANDS[rng.gen_range(0..BRANDS.len())].into()),
                V::Str(TYPES[rng.gen_range(0..TYPES.len())].into()),
                V::Int(rng.gen_range(1..51)),
                V::Str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())].into()),
                V::Double(900.0 + (p % 1000) as f64 * 0.1),
            ],
        )?;
        total += 1;
        // 2 partsupp rows per part (scaled down from 4).
        for k in 0..2 {
            let suppkey = (p * 7 + k * 13) % sz.suppliers;
            rw.insert(
                &mut txn,
                "partsupp",
                vec![
                    V::Int(p * 1000 + suppkey),
                    V::Int(p),
                    V::Int(suppkey),
                    V::Int(rng.gen_range(1..10_000)),
                    V::Double(rng.gen_range(1.0..1000.0)),
                ],
            )?;
            total += 1;
        }
        if total.is_multiple_of(20_000) {
            rw.commit(std::mem::replace(&mut txn, rw.begin())).unwrap();
        }
    }
    for o in 0..sz.orders {
        let odate = day(&mut rng);
        rw.insert(
            &mut txn,
            "orders",
            vec![
                V::Int(o),
                V::Int(rng.gen_range(0..sz.customers)),
                V::Str(if o % 2 == 0 { "F" } else { "O" }.into()),
                V::Double(rng.gen_range(1000.0..400_000.0)),
                V::Date(odate),
                V::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].into()),
                V::Int(0),
            ],
        )?;
        total += 1;
        let lines = rng.gen_range(1..=7);
        for l in 0..lines {
            let ship = odate + rng.gen_range(1..122);
            rw.insert(
                &mut txn,
                "lineitem",
                vec![
                    V::Int(o * 8 + l),
                    V::Int(o),
                    V::Int(rng.gen_range(0..sz.parts)),
                    V::Int(rng.gen_range(0..sz.suppliers)),
                    V::Double(rng.gen_range(1.0f64..51.0).floor()),
                    V::Double(rng.gen_range(900.0..105_000.0)),
                    V::Double((rng.gen_range(0..11) as f64) / 100.0),
                    V::Double((rng.gen_range(0..9) as f64) / 100.0),
                    V::Str(["R", "A", "N"][rng.gen_range(0..3)].into()),
                    V::Str(
                        if ship > imci_common::value::parse_date_str("1995-06-17").unwrap() {
                            "O"
                        } else {
                            "F"
                        }
                        .into(),
                    ),
                    V::Date(ship),
                    V::Date(ship + rng.gen_range(-30..31)),
                    V::Date(ship + rng.gen_range(1..31)),
                    V::Str(MODES[rng.gen_range(0..MODES.len())].into()),
                ],
            )?;
            total += 1;
        }
        if total.is_multiple_of(20_000) {
            rw.commit(std::mem::replace(&mut txn, rw.begin())).unwrap();
        }
    }
    rw.commit(txn).unwrap();
    Ok(total)
}

/// The 22 dialect-adapted TPC-H queries (1-indexed name, SQL).
pub fn queries() -> Vec<(&'static str, String)> {
    vec![
        ("Q1", "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), \
                SUM(l_extendedprice * (1 - l_discount)), AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) \
                FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus".into()),
        ("Q2", "SELECT s_acctbal, s_name, n_name, p_partkey \
                FROM part, supplier, partsupp, nation \
                WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND s_nationkey = n_nationkey \
                AND p_size = 15 AND p_type LIKE '%STEEL' AND ps_supplycost < 100 \
                ORDER BY s_acctbal DESC, n_name, s_name LIMIT 100".into()),
        ("Q3", "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)), o_orderdate, o_shippriority \
                FROM customer, orders, lineitem \
                WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
                AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
                GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY 2 DESC, o_orderdate LIMIT 10".into()),
        ("Q4", "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem \
                WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01' \
                AND l_orderkey = o_orderkey AND l_commitdate < l_receiptdate \
                GROUP BY o_orderpriority ORDER BY o_orderpriority".into()),
        ("Q5", "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                FROM customer, orders, lineitem, supplier, nation, region \
                WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
                AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
                AND r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' \
                GROUP BY n_name ORDER BY revenue DESC".into()),
        ("Q6", "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
                WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24".into()),
        ("Q7", "SELECT n_name, YEAR(l_shipdate), SUM(l_extendedprice * (1 - l_discount)) \
                FROM supplier, lineitem, orders, customer, nation \
                WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
                AND s_nationkey = n_nationkey AND n_name = 'FRANCE' \
                AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
                GROUP BY n_name, YEAR(l_shipdate) ORDER BY 1, 2".into()),
        ("Q8", "SELECT YEAR(o_orderdate), SUM(l_extendedprice * (1 - l_discount)) \
                FROM part, lineitem, orders, customer, nation, region \
                WHERE p_partkey = l_partkey AND l_orderkey = o_orderkey AND o_custkey = c_custkey \
                AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'AMERICA' \
                AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
                AND p_type = 'ECONOMY ANODIZED STEEL' \
                GROUP BY YEAR(o_orderdate) ORDER BY 1".into()),
        ("Q9", "SELECT n_name, YEAR(o_orderdate), SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) \
                FROM lineitem, partsupp, supplier, orders, nation \
                WHERE ps_partkey = l_partkey AND ps_suppkey = l_suppkey AND s_suppkey = l_suppkey \
                AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
                GROUP BY n_name, YEAR(o_orderdate) ORDER BY n_name, 2 DESC".into()),
        ("Q10", "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, c_acctbal, n_name \
                FROM customer, orders, lineitem, nation \
                WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
                AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' \
                AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
                GROUP BY c_custkey, c_name, c_acctbal, n_name ORDER BY revenue DESC LIMIT 20".into()),
        ("Q11", "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS v \
                FROM partsupp, supplier, nation \
                WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' \
                GROUP BY ps_partkey ORDER BY v DESC LIMIT 100".into()),
        ("Q12", "SELECT l_shipmode, COUNT(*) FROM orders, lineitem \
                WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') \
                AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
                AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01' \
                GROUP BY l_shipmode ORDER BY l_shipmode".into()),
        ("Q13", "SELECT c_custkey, COUNT(*) AS c_count FROM customer, orders \
                WHERE c_custkey = o_custkey AND o_orderpriority <> '1-URGENT' \
                GROUP BY c_custkey ORDER BY c_count DESC, c_custkey LIMIT 100".into()),
        ("Q14", "SELECT 100.00 * SUM(l_extendedprice * (1 - l_discount)) / (1 + SUM(l_extendedprice)) \
                FROM lineitem, part WHERE l_partkey = p_partkey \
                AND l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01' \
                AND p_type LIKE 'PROMO%'".into()),
        ("Q15", "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_rev \
                FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' \
                GROUP BY l_suppkey ORDER BY total_rev DESC LIMIT 1".into()),
        ("Q16", "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) \
                FROM partsupp, part WHERE p_partkey = ps_partkey \
                AND p_brand <> 'Brand#45' AND p_size IN (1, 14, 23, 45, 19, 3, 36, 9) \
                GROUP BY p_brand, p_type, p_size ORDER BY 4 DESC, p_brand, p_type, p_size LIMIT 100".into()),
        ("Q17", "SELECT SUM(l_extendedprice) / 7.0 FROM lineitem, part \
                WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' AND p_container = 'MED BOX' \
                AND l_quantity < 10".into()),
        ("Q18", "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) \
                FROM customer, orders, lineitem \
                WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND o_totalprice > 350000 \
                GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
                ORDER BY o_totalprice DESC, o_orderdate LIMIT 100".into()),
        ("Q19", "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part \
                WHERE p_partkey = l_partkey AND p_brand = 'Brand#33' \
                AND p_container IN ('SM CASE', 'MED BOX') AND l_quantity BETWEEN 1 AND 11 \
                AND p_size BETWEEN 1 AND 5 AND l_shipmode IN ('AIR', 'REG AIR')".into()),
        ("Q20", "SELECT s_name, COUNT(*) FROM supplier, nation, partsupp \
                WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey AND n_name = 'CANADA' \
                AND ps_availqty > 5000 GROUP BY s_name ORDER BY s_name LIMIT 100".into()),
        ("Q21", "SELECT s_name, COUNT(*) AS numwait FROM supplier, lineitem, orders, nation \
                WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND o_orderstatus = 'F' \
                AND l_receiptdate > l_commitdate AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' \
                GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100".into()),
        ("Q22", "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer \
                WHERE c_acctbal > 0.0 AND c_nationkey IN (13, 31, 23, 29, 30, 18, 17) \
                GROUP BY c_nationkey ORDER BY c_nationkey".into()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale() {
        let s = sizes(0.01);
        assert_eq!(s.suppliers, 100);
        assert_eq!(s.customers, 1500);
        assert_eq!(s.orders, 15000);
        let tiny = sizes(0.0001);
        assert!(tiny.suppliers >= 10, "floors enforced");
    }

    #[test]
    fn all_22_queries_parse() {
        for (name, sql) in queries() {
            let stmt =
                imci_sql::parse(&sql).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            assert!(matches!(stmt, imci_sql::Statement::Select(_)), "{name}");
        }
    }

    #[test]
    fn ddl_parses() {
        for stmt in ddl() {
            imci_sql::parse(&stmt).unwrap();
        }
    }
}
