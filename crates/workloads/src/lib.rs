//! Workload generators for the evaluation (paper §8.1):
//!
//! * [`tpch`] — a TPC-H-derived schema/data/query set (Fig. 9);
//! * [`chbench`] — a CH-benCHmark-like hybrid workload: TPC-C-style
//!   transactions + analytical queries over the same schema (Fig. 10);
//! * [`sysbench`] — sysbench-style insert-only / write-only tables with
//!   Zipfian key access (Figs. 11/14);
//! * [`production`] — synthetic customer profiles matching the aggregate
//!   statistics of Table 2 (Fig. 15 / Table 3).

pub mod chbench;
pub mod production;
pub mod sysbench;
pub mod tpch;

/// Zipfian index sampler (approximate, via the classic power-law CDF
/// inversion) used by the sysbench-style workloads.
pub struct Zipf {
    n: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
    zeta_theta: f64,
}

impl Zipf {
    /// Sampler over `1..=n` with skew `theta` (0 < theta < 1).
    pub fn new(n: u64, theta: f64) -> Zipf {
        let zeta = |m: u64, t: f64| -> f64 {
            // For large m use a coarse approximation to keep setup O(1k).
            let cap = m.min(10_000);
            let mut s = 0.0;
            for i in 1..=cap {
                s += 1.0 / (i as f64).powf(t);
            }
            if m > cap {
                // integral tail approximation
                s += ((m as f64).powf(1.0 - t) - (cap as f64).powf(1.0 - t)) / (1.0 - t);
            }
            s
        };
        let zeta_n = zeta(n, theta);
        let zeta_theta = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        Zipf {
            n,
            theta,
            zeta_n,
            alpha,
            eta,
            zeta_theta,
        }
    }

    /// Sample an index in `1..=n` from a uniform `u` in `[0,1)`.
    pub fn sample(&self, u: f64) -> u64 {
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let v = 1.0 + (self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (v as u64).clamp(1, self.n)
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Convenience: zeta(2, theta) (tests).
    pub fn zeta_theta(&self) -> f64 {
        self.zeta_theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zipf_is_skewed_toward_small_indices() {
        let z = Zipf::new(10_000, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            let k = z.sample(rng.gen::<f64>());
            assert!((1..=10_000).contains(&k));
            if k <= 100 {
                hot += 1;
            }
        }
        // With theta=0.9 the hottest 1% of keys should draw far more
        // than 1% of accesses.
        assert!(
            hot as f64 / n as f64 > 0.2,
            "hot fraction {}",
            hot as f64 / n as f64
        );
    }
}
