//! sysbench-style OLTP micro-workloads (paper §8.1: "insert-only and
//! write-only (update) workloads with Zipfian distribution... 100
//! tables using 64-bit integers as primary keys and 188 bytes per
//! record").

use crate::Zipf;
use imci_cluster::Cluster;
use imci_common::{Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The sysbench table set.
pub struct Sysbench {
    /// Number of `sbtest<i>` tables.
    pub n_tables: usize,
    next_pk: Vec<Arc<AtomicI64>>,
    zipf: Zipf,
}

fn pad(len: usize, seed: i64) -> String {
    let mut s = String::with_capacity(len);
    let mut x = seed as u64 | 1;
    while s.len() < len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.push((b'a' + (x >> 33) as u8 % 26) as char);
    }
    s
}

impl Sysbench {
    /// Create the tables (`sbtest1..=n`): id PK, k INT (secondary), and
    /// two padding strings bringing the record to ~188 bytes.
    pub fn setup(cluster: &Cluster, n_tables: usize, initial_rows: i64) -> Result<Sysbench> {
        let mut next_pk = Vec::with_capacity(n_tables);
        for t in 1..=n_tables {
            cluster.execute(&format!(
                "CREATE TABLE sbtest{t} (id INT NOT NULL, k INT, c VARCHAR(120), p VARCHAR(60),
                 PRIMARY KEY(id), KEY k_{t}(k), KEY COLUMN_INDEX(id, k, c, p))"
            ))?;
            let rw = cluster.rw().expect("RW node is up");
            let mut txn = rw.begin();
            for i in 0..initial_rows {
                rw.insert(
                    &mut txn,
                    &format!("sbtest{t}"),
                    vec![
                        Value::Int(i),
                        Value::Int(i % 1000),
                        Value::Str(pad(120, i)),
                        Value::Str(pad(60, i + 7)),
                    ],
                )?;
            }
            rw.commit(txn).unwrap();
            next_pk.push(Arc::new(AtomicI64::new(initial_rows)));
        }
        Ok(Sysbench {
            n_tables,
            next_pk,
            zipf: Zipf::new(initial_rows.max(2) as u64, 0.9),
        })
    }

    /// One insert-only operation (returns the commit VID).
    pub fn insert_one(&self, cluster: &Cluster, rng: &mut StdRng) -> Result<()> {
        let t = rng.gen_range(0..self.n_tables);
        let pk = self.next_pk[t].fetch_add(1, Ordering::SeqCst);
        let rw = cluster.rw().expect("RW node is up");
        let mut txn = rw.begin();
        rw.insert(
            &mut txn,
            &format!("sbtest{}", t + 1),
            vec![
                Value::Int(pk),
                Value::Int(pk % 1000),
                Value::Str(pad(120, pk)),
                Value::Str(pad(60, pk + 7)),
            ],
        )?;
        rw.commit(txn).unwrap();
        Ok(())
    }

    /// One write-only (update) operation on a Zipfian-hot key.
    pub fn update_one(&self, cluster: &Cluster, rng: &mut StdRng) -> Result<()> {
        let t = rng.gen_range(0..self.n_tables);
        let hot = self.zipf.sample(rng.gen::<f64>()) as i64 - 1;
        let table = format!("sbtest{}", t + 1);
        let rw = cluster.rw().expect("RW node is up");
        if let Some(mut row) = rw.get_row(&table, hot)? {
            let mut txn = rw.begin();
            row.values[1] = Value::Int(rng.gen_range(0..1000));
            row.values[2] = Value::Str(pad(120, rng.gen::<i64>().abs() % 100000));
            rw.update(&mut txn, &table, hot, row.values)?;
            rw.commit(txn).unwrap();
        }
        Ok(())
    }

    /// Run `n_threads` client threads issuing ops for `duration`;
    /// returns total committed operations.
    pub fn run_clients(
        self: &Arc<Self>,
        cluster: &Arc<Cluster>,
        n_threads: usize,
        duration: std::time::Duration,
        inserts: bool,
    ) -> u64 {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for tid in 0..n_threads {
            let wl = self.clone();
            let cluster = cluster.clone();
            let stop = stop.clone();
            let total = total.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid as u64 * 77 + 1);
                while !stop.load(Ordering::Relaxed) {
                    let r = if inserts {
                        wl.insert_one(&cluster, &mut rng)
                    } else {
                        wl.update_one(&cluster, &mut rng)
                    };
                    if r.is_ok() {
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            let _ = h.join();
        }
        total.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_cluster::ClusterConfig;

    #[test]
    fn setup_and_ops() {
        let cluster = Cluster::start(ClusterConfig {
            n_ro: 0,
            group_cap: 64,
            ..Default::default()
        });
        let wl = Sysbench::setup(&cluster, 2, 100).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            wl.insert_one(&cluster, &mut rng).unwrap();
            wl.update_one(&cluster, &mut rng).unwrap();
        }
        let n1 = cluster.rw().unwrap().row_count("sbtest1").unwrap();
        let n2 = cluster.rw().unwrap().row_count("sbtest2").unwrap();
        assert_eq!(n1 + n2, 250, "100+100 initial + 50 inserts");
    }

    #[test]
    fn record_is_roughly_188_bytes() {
        let row = imci_common::Row::new(vec![
            Value::Int(1),
            Value::Int(1),
            Value::Str(pad(120, 1)),
            Value::Str(pad(60, 8)),
        ]);
        let n = row.encode().len();
        assert!((180..230).contains(&n), "encoded record {n} bytes");
    }
}
