//! Equivalence oracle for morsel-driven parallel execution: on random
//! data (nulls, deletes, adversarial group capacities) and random plan
//! shapes (filtered scans, self-joins, group-by aggregation, top-K),
//! running with `parallelism ∈ {2, 4, 7}` must produce batches
//! bit-identical to the serial `parallelism = 1` path, and repeated
//! parallel runs must be deterministic.
//!
//! Doubles are generated as multiples of 0.25 so every partial sum is
//! exactly representable — the merge order the parallel aggregate uses
//! is deterministic, and with exact values serial == parallel holds as
//! equality, not approximation.

use imci_common::{
    ColumnDef, DataType, FxHashMap, IndexDef, IndexKind, Schema, TableId, Value, Vid,
};
use imci_core::ColumnIndex;
use imci_executor::{execute, AggCall, AggFunc, CmpOp, ExecContext, Expr, PhysicalPlan};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        TableId(9),
        "t",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("val", DataType::Int),
            ColumnDef::new("grp", DataType::Int),
            ColumnDef::new("d", DataType::Double),
        ],
        vec![
            IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            },
            IndexDef {
                kind: IndexKind::Column,
                name: "ci".into(),
                columns: vec![0, 1, 2, 3],
            },
        ],
    )
    .unwrap()
}

type Row = (Option<i64>, Option<i64>, Option<f64>);

/// Build a column index over generated rows. `group_cap` is the rowgroup
/// capacity — i.e. the morsel size — so small values make many morsels
/// out of few rows (the adversarial case for merge operators). Some rows
/// are deleted afterwards so sealed groups carry partial visibility.
fn build_ctx(rows: &[Row], dels: &[u8], group_cap: usize) -> ExecContext {
    let idx = ColumnIndex::for_schema(&schema(), group_cap);
    for (i, (val, grp, d)) in rows.iter().enumerate() {
        idx.insert(
            Vid(1),
            &[
                Value::Int(i as i64),
                val.map(Value::Int).unwrap_or(Value::Null),
                grp.map(Value::Int).unwrap_or(Value::Null),
                d.map(Value::Double).unwrap_or(Value::Null),
            ],
        )
        .unwrap();
    }
    idx.advance_visible(Vid(1));
    for i in 0..rows.len() {
        if dels[i % dels.len()] == 0 {
            idx.delete(Vid(2), i as i64).unwrap();
        }
    }
    idx.advance_visible(Vid(2));
    let mut snaps = FxHashMap::default();
    snaps.insert(TableId(9), Arc::new(idx.snapshot()));
    ExecContext::new(snaps)
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        (0u8..8, -20i64..20).prop_map(|(t, v)| (t > 0).then_some(v)),
        (0u8..10, 0i64..5).prop_map(|(t, g)| (t > 0).then_some(g)),
        // Multiples of 0.25: exact in binary, so parallel partial sums
        // merged in any grouping equal the serial left-to-right sum.
        (0u8..8, -120i64..120).prop_map(|(t, q)| (t > 0).then_some(q as f64 * 0.25)),
    )
}

fn scan(filter: Option<Expr>) -> PhysicalPlan {
    PhysicalPlan::ColumnScan {
        table: TableId(9),
        cols: vec![0, 1, 2, 3],
        prune: vec![],
        filter,
    }
}

fn agg(func: AggFunc, col: usize) -> AggCall {
    AggCall {
        func,
        arg: (func != AggFunc::CountStar).then(|| Expr::col(col)),
        distinct: false,
    }
}

/// Random plan over the scanned table, exercising every parallel merge
/// path: pushed-filter scans, standalone filters, group-by and global
/// aggregation, hash self-joins, full sorts, and top-K.
fn arb_plan() -> impl Strategy<Value = PhysicalPlan> {
    fn filt() -> impl Strategy<Value = Expr> {
        (-15i64..15).prop_map(|k| Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit(k)))
    }
    prop_oneof![
        // Filtered scan (pushed down), then Project keeping it parallel.
        filt().prop_map(|p| PhysicalPlan::Project {
            input: Box::new(scan(Some(p))),
            exprs: vec![Expr::col(0), Expr::col(1), Expr::col(3)],
        }),
        // Standalone Filter over a full scan.
        filt().prop_map(|p| PhysicalPlan::Filter {
            input: Box::new(scan(None)),
            pred: p,
        }),
        // Group-by aggregation over a filtered scan: every Acc variant.
        filt().prop_map(|p| PhysicalPlan::HashAgg {
            input: Box::new(scan(Some(p))),
            group_by: vec![Expr::col(2)],
            aggs: vec![
                agg(AggFunc::CountStar, 0),
                agg(AggFunc::Count, 1),
                agg(AggFunc::Sum, 1),
                agg(AggFunc::Sum, 3),
                agg(AggFunc::Avg, 3),
                agg(AggFunc::Min, 1),
                agg(AggFunc::Max, 3),
            ],
        }),
        // Global aggregate (no groups) — exercises the empty-input row.
        filt().prop_map(|p| PhysicalPlan::HashAgg {
            input: Box::new(scan(Some(p))),
            group_by: vec![],
            aggs: vec![agg(AggFunc::CountStar, 0), agg(AggFunc::Sum, 3)],
        }),
        // Hash self-join on grp: partitioned build + parallel probe.
        (filt(), -15i64..15).prop_map(|(p, k)| PhysicalPlan::HashJoin {
            left: Box::new(scan(Some(p))),
            right: Box::new(scan(Some(Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(k))))),
            left_keys: vec![2],
            right_keys: vec![2],
        }),
        // Top-K over a filtered scan: per-morsel pruning + bounded sort.
        (filt(), 1usize..12).prop_map(|(p, k)| PhysicalPlan::Sort {
            input: Box::new(scan(Some(p))),
            keys: vec![(1, true), (0, false)],
            limit: Some(k),
        }),
        // Full sort (no limit) for the gather-then-sort path.
        filt().prop_map(|p| PhysicalPlan::Sort {
            input: Box::new(scan(Some(p))),
            keys: vec![(3, false), (0, true)],
            limit: None,
        }),
    ]
}

fn run(ctx: &mut ExecContext, plan: &PhysicalPlan, par: usize) -> Vec<Vec<Value>> {
    ctx.parallelism = par;
    let b = execute(plan, ctx).unwrap();
    (0..b.len).map(|r| b.row(r)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn parallel_execution_matches_serial(
        rows in prop::collection::vec(arb_row(), 1..100),
        dels in prop::collection::vec(0u8..4, 1..12),
        group_cap in prop_oneof![Just(3usize), Just(7), Just(16), Just(64)],
        plan in arb_plan(),
    ) {
        let mut ctx = build_ctx(&rows, &dels, group_cap);
        let serial = run(&mut ctx, &plan, 1);
        for par in [2usize, 4, 7] {
            let parallel = run(&mut ctx, &plan, par);
            prop_assert_eq!(&serial, &parallel, "parallelism {} diverged", par);
        }
    }

    #[test]
    fn parallel_execution_is_deterministic(
        rows in prop::collection::vec(arb_row(), 1..80),
        dels in prop::collection::vec(0u8..4, 1..8),
        plan in arb_plan(),
    ) {
        let mut ctx = build_ctx(&rows, &dels, 5);
        let a = run(&mut ctx, &plan, 4);
        let b = run(&mut ctx, &plan, 4);
        prop_assert_eq!(a, b, "repeated parallel runs diverged");
    }
}
