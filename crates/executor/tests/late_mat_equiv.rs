//! Equivalence oracle for late-materialized scans: for random packs
//! (nulls, deletes, escape-heavy strings, all-equal columns that hit
//! width-0 bit packing) and random predicates, filter-on-compressed +
//! late gather must produce batches identical to the early-materialized
//! decode-then-mask baseline — both through the scan's pushed-down
//! filter and through the standalone Filter operator.

use imci_common::{
    ColumnDef, DataType, FxHashMap, IndexDef, IndexKind, Schema, TableId, Value, Vid,
};
use imci_core::ColumnIndex;
use imci_executor::{execute, CmpOp, ExecContext, Expr, LikePattern, PhysicalPlan};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        TableId(7),
        "t",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("val", DataType::Int),
            ColumnDef::new("s", DataType::Str),
            ColumnDef::new("d", DataType::Double),
            ColumnDef::new("k", DataType::Int),
        ],
        vec![
            IndexDef {
                kind: IndexKind::Primary,
                name: "PRIMARY".into(),
                columns: vec![0],
            },
            IndexDef {
                kind: IndexKind::Column,
                name: "ci".into(),
                columns: vec![0, 1, 2, 3, 4],
            },
        ],
    )
    .unwrap()
}

type Row = (Option<i64>, Option<String>, Option<f64>);

/// Build a column index from generated rows: small groups so the data
/// spans several sealed packs plus a partial tail, some rows deleted
/// after the fact (partial visibility inside sealed groups), and column
/// `k` all-equal (width-0 bit packing).
fn build_ctx(rows: &[Row], dels: &[u8]) -> ExecContext {
    let idx = ColumnIndex::for_schema(&schema(), 16);
    for (i, (val, s, d)) in rows.iter().enumerate() {
        idx.insert(
            Vid(1),
            &[
                Value::Int(i as i64),
                val.map(Value::Int).unwrap_or(Value::Null),
                s.clone().map(Value::Str).unwrap_or(Value::Null),
                d.map(Value::Double).unwrap_or(Value::Null),
                Value::Int(42),
            ],
        )
        .unwrap();
    }
    idx.advance_visible(Vid(1));
    for i in 0..rows.len() {
        if dels[i % dels.len()] == 0 {
            idx.delete(Vid(2), i as i64).unwrap();
        }
    }
    idx.advance_visible(Vid(2));
    let mut snaps = FxHashMap::default();
    snaps.insert(TableId(7), Arc::new(idx.snapshot()));
    let mut ctx = ExecContext::new(snaps);
    ctx.parallelism = 2;
    ctx
}

fn cmp_ops() -> impl Strategy<Value = CmpOp> {
    (0usize..6).prop_map(|i| {
        [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][i]
    })
}

/// Leaf predicates covering every kernel: FOR-domain int compares
/// (including all-match / none-match meta cuts on the all-equal column),
/// dictionary string predicates, doubles, IN, LIKE, IS NULL, and a
/// non-compressible arithmetic shape that exercises the fallback.
fn leaf_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (cmp_ops(), -40i64..40).prop_map(|(op, k)| Expr::cmp(op, Expr::col(1), Expr::lit(k))),
        // literal-first comparison (flipped operand order)
        (cmp_ops(), -40i64..40).prop_map(|(op, k)| Expr::Cmp(
            op,
            Box::new(Expr::lit(k)),
            Box::new(Expr::col(1))
        )),
        // all-equal column: hits the min==max meta short-circuits
        (cmp_ops(), 41i64..44).prop_map(|(op, k)| Expr::cmp(op, Expr::col(4), Expr::lit(k))),
        (cmp_ops(), "[a-c%_ ]{0,3}").prop_map(|(op, s)| Expr::cmp(
            op,
            Expr::col(2),
            Expr::Lit(Value::Str(s))
        )),
        (cmp_ops(), -30f64..30.0).prop_map(|(op, d)| Expr::cmp(op, Expr::col(3), Expr::lit(d))),
        // int column vs double literal (float-domain compare, no gather)
        (cmp_ops(), -30f64..30.0).prop_map(|(op, d)| Expr::cmp(op, Expr::col(1), Expr::lit(d))),
        (-40i64..10, 0i64..50).prop_map(|(lo, hi)| Expr::Between(
            Box::new(Expr::col(1)),
            Value::Int(lo),
            Value::Int(hi)
        )),
        prop::collection::vec(-40i64..40, 0..5).prop_map(|vs| Expr::InList(
            Box::new(Expr::col(1)),
            vs.into_iter().map(Value::Int).collect()
        )),
        prop::collection::vec("[a-c%_ ]{0,3}", 0..4).prop_map(|vs| Expr::InList(
            Box::new(Expr::col(2)),
            vs.into_iter().map(Value::Str).collect()
        )),
        ((0usize..4), "[a-c ]{0,2}").prop_map(|(kind, p)| {
            let pat = match kind {
                0 => format!("{p}%"),
                1 => format!("%{p}"),
                2 => format!("%{p}%"),
                _ => p,
            };
            Expr::Like(Box::new(Expr::col(2)), LikePattern::parse(&pat).unwrap())
        }),
        (0usize..4).prop_map(|k| Expr::IsNull(Box::new(Expr::col(k % 4)), k >= 2)),
        // not compressible: forces the materialize-then-mask fallback
        (-40i64..40).prop_map(|k| Expr::cmp(
            CmpOp::Lt,
            Expr::Arith(
                imci_executor::ArithOp::Add,
                Box::new(Expr::col(1)),
                Box::new(Expr::lit(1i64))
            ),
            Expr::lit(k)
        )),
    ]
}

fn pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        leaf_pred(),
        (leaf_pred(), leaf_pred()).prop_map(|(a, b)| a.and(b)),
        (leaf_pred(), leaf_pred()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        leaf_pred().prop_map(|a| Expr::Not(Box::new(a))),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        (0u8..8, -40i64..40).prop_map(|(t, v)| (t > 0).then_some(v)),
        (0u8..8, "[a-c%_ ]{0,4}").prop_map(|(t, s)| (t > 0).then_some(s)),
        (0u8..8, -30f64..30.0).prop_map(|(t, d)| (t > 0).then_some(d)),
    )
}

fn assert_equivalent(ctx: &mut ExecContext, plan: &PhysicalPlan) {
    ctx.late_materialization = true;
    let on = execute(plan, ctx).unwrap();
    ctx.late_materialization = false;
    let off = execute(plan, ctx).unwrap();
    assert_eq!(on.len, off.len, "row count diverged");
    for r in 0..on.len {
        assert_eq!(on.row(r), off.row(r), "row {r} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_filter_on_compressed_matches_decode_then_mask(
        rows in prop::collection::vec(arb_row(), 1..120),
        dels in prop::collection::vec(0u8..4, 1..16),
        p in pred(),
    ) {
        let mut ctx = build_ctx(&rows, &dels);
        // Pushed-down scan filter (predicate kernels on packs).
        let scan = PhysicalPlan::ColumnScan {
            table: TableId(7),
            cols: vec![0, 1, 2, 3, 4],
            prune: vec![],
            filter: Some(p.clone()),
        };
        assert_equivalent(&mut ctx, &scan);
        // Standalone Filter operator over a full scan (selection-vector
        // path on materialized batches).
        let filtered = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::ColumnScan {
                table: TableId(7),
                cols: vec![0, 1, 2, 3, 4],
                prune: vec![],
                filter: None,
            }),
            pred: p,
        };
        assert_equivalent(&mut ctx, &filtered);
    }
}

/// All-equal packs bit-pack at width 0; every comparison resolves via
/// the meta short-circuits and must still respect deletes.
#[test]
fn width_zero_pack_with_deletes() {
    let rows: Vec<Row> = (0..40).map(|_| (Some(1), None, None)).collect();
    let dels = vec![0, 1, 1, 1]; // delete every 4th row
    let mut ctx = build_ctx(&rows, &dels);
    for (op, k) in [
        (CmpOp::Eq, 42),
        (CmpOp::Ne, 42),
        (CmpOp::Lt, 42),
        (CmpOp::Ge, 42),
        (CmpOp::Le, 100),
        (CmpOp::Gt, -100),
    ] {
        let plan = PhysicalPlan::ColumnScan {
            table: TableId(7),
            cols: vec![0, 4],
            prune: vec![],
            filter: Some(Expr::cmp(op, Expr::col(1), Expr::lit(k))),
        };
        assert_equivalent(&mut ctx, &plan);
    }
}
