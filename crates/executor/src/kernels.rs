//! Predicate kernels over compressed packs (paper §4.1 "smart scan" +
//! §6.3 vectorized evaluation; MonetDB/X100-style late materialization).
//!
//! The scan keeps a [`SelVec`] of surviving row offsets and refines it
//! one predicate at a time, reading the *compressed* column
//! representation directly:
//!
//! * integer comparisons are rewritten into the frame-of-reference
//!   domain — the literal becomes `lit - base` and each row test is a
//!   single `u64` compare against the bit-packed residual, no decode;
//! * string `=` / `IN` / `LIKE` / ordering predicates are resolved once
//!   per pack against the dictionary (one match bit per dictionary
//!   entry), so each row test is a `u32` code lookup;
//! * Pack Meta min/max short-circuits *both* ways: a pack whose range
//!   proves no row can match empties the selection without touching
//!   data, and a null-free pack whose range proves **every** row
//!   matches keeps the whole selection — the dual of pruning.
//!
//! Conjunctions cascade (each conjunct sees only prior survivors),
//! disjunctions merge sorted selections, and negation is a sorted
//! difference against the parent selection — which reproduces
//! `eval_mask`'s collapse of SQL NULL to false exactly.
//!
//! Partial (uncompressed) columns run the same kernels over the typed
//! vectors. Expressions outside the supported shapes (column/column
//! compares, arithmetic, `YEAR(..)`) report [`compressible`] = false
//! and the scan falls back to materialize-then-mask for the filter
//! columns only.

use crate::batch::Batch;
use crate::expr::{CmpOp, Expr, LikePattern};
use imci_common::{Error, Result, Value};
use imci_core::pack::PackMeta;
use imci_core::{ColumnData, ColumnRead, Pack, PackData, SelVec};
use std::cmp::Ordering;

/// A borrowed view of one scan column: sealed pack or typed vector.
#[derive(Clone, Copy)]
pub enum ColView<'a> {
    /// Sealed compressed pack.
    Pack(&'a Pack),
    /// Mutable partial column (or an already-materialized batch column).
    Col(&'a ColumnData),
}

impl<'a> ColView<'a> {
    /// View a scan column read.
    pub fn of(read: &'a ColumnRead) -> ColView<'a> {
        match read {
            ColumnRead::Pack(p) => ColView::Pack(p),
            ColumnRead::Materialized(c) => ColView::Col(c),
        }
    }
}

/// Views over a batch's columns (the Filter operator's input).
pub fn batch_views(batch: &Batch) -> Vec<ColView<'_>> {
    batch.cols.iter().map(ColView::Col).collect()
}

/// Can `expr` be evaluated entirely by the compressed-domain kernels?
pub fn compressible(expr: &Expr, cols: &[ColView]) -> bool {
    match expr {
        Expr::And(a, b) | Expr::Or(a, b) => compressible(a, cols) && compressible(b, cols),
        Expr::Not(a) => compressible(a, cols),
        Expr::Cmp(_, a, b) => matches!(
            (&**a, &**b),
            (Expr::Col(i), Expr::Lit(_)) | (Expr::Lit(_), Expr::Col(i)) if *i < cols.len()
        ),
        Expr::Between(a, _, _) | Expr::Like(a, _) | Expr::IsNull(a, _) => {
            matches!(&**a, Expr::Col(i) if *i < cols.len())
        }
        Expr::InList(a, vs) => match &**a {
            Expr::Col(i) if *i < cols.len() => inlist_supported(&cols[*i], vs),
            _ => false,
        },
        _ => false,
    }
}

/// `IN` lists are only run on compressed data when every non-null list
/// element shares the column's storage class; mixed-type lists keep the
/// generic hash-set semantics of the fallback path.
fn inlist_supported(col: &ColView, list: &[Value]) -> bool {
    let ok = |v: &Value| match col {
        ColView::Pack(p) => match p.data {
            PackData::Int { .. } => matches!(v, Value::Int(_) | Value::Date(_)),
            PackData::Double { .. } => matches!(v, Value::Double(_)),
            PackData::Str { .. } => matches!(v, Value::Str(_)),
        },
        ColView::Col(c) => match c {
            ColumnData::Int { .. } => matches!(v, Value::Int(_) | Value::Date(_)),
            ColumnData::Double { .. } => matches!(v, Value::Double(_)),
            ColumnData::Str { .. } => matches!(v, Value::Str(_)),
        },
    };
    list.iter().all(|v| v.is_null() || ok(v))
}

/// Refine `sel` to the rows of `cols` satisfying `expr`. Exactly
/// mirrors `Expr::eval_mask` over the materialized columns (WHERE-clause
/// semantics: NULL collapses to false at every predicate).
pub fn eval_sel(expr: &Expr, cols: &[ColView], sel: SelVec) -> Result<SelVec> {
    match expr {
        Expr::And(a, b) => {
            let s = eval_sel(a, cols, sel)?;
            if s.is_empty() {
                return Ok(s);
            }
            eval_sel(b, cols, s)
        }
        Expr::Or(a, b) => {
            let sa = eval_sel(a, cols, sel.clone())?;
            let sb = eval_sel(b, cols, sel)?;
            Ok(sa.union(&sb))
        }
        Expr::Not(a) => {
            let sa = eval_sel(a, cols, sel.clone())?;
            Ok(sel.difference(&sa))
        }
        Expr::Cmp(op, a, b) => match (&**a, &**b) {
            (Expr::Col(i), Expr::Lit(v)) => Ok(cmp_sel(*op, &cols[*i], v, sel)),
            (Expr::Lit(v), Expr::Col(i)) => Ok(cmp_sel(op.flip(), &cols[*i], v, sel)),
            _ => Err(not_compressible()),
        },
        // BETWEEN is sugar for `>= lo AND <= hi` (same as eval_mask).
        Expr::Between(a, lo, hi) => match &**a {
            Expr::Col(i) => {
                // Pack Meta cut in both directions before any row work:
                // range-disjoint packs empty the selection, range-covered
                // null-free packs keep it whole.
                if let ColView::Pack(p) = &cols[*i] {
                    if !lo.is_null() && !hi.is_null() {
                        if !p.meta.may_contain_range(Some(lo), Some(hi)) {
                            return Ok(SelVec::new());
                        }
                        if p.meta.all_in_range(Some(lo), Some(hi)) {
                            return Ok(sel);
                        }
                    }
                }
                let s = cmp_sel(CmpOp::Ge, &cols[*i], lo, sel);
                Ok(cmp_sel(CmpOp::Le, &cols[*i], hi, s))
            }
            _ => Err(not_compressible()),
        },
        Expr::InList(a, vs) => match &**a {
            Expr::Col(i) => Ok(inlist_sel(&cols[*i], vs, sel)),
            _ => Err(not_compressible()),
        },
        Expr::Like(a, pat) => match &**a {
            Expr::Col(i) => Ok(like_sel(&cols[*i], pat, sel)),
            _ => Err(not_compressible()),
        },
        Expr::IsNull(a, negated) => match &**a {
            Expr::Col(i) => Ok(isnull_sel(&cols[*i], *negated, sel)),
            _ => Err(not_compressible()),
        },
        _ => Err(not_compressible()),
    }
}

fn not_compressible() -> Error {
    Error::Execution("predicate not evaluable on compressed packs".into())
}

/// Pack Meta verdict for a comparison against a literal.
enum Cut {
    /// Min/max prove every row (null-free pack) matches.
    All,
    /// Min/max prove no row can match.
    None,
    /// Per-row evaluation required.
    Row,
}

fn meta_cut_cmp(meta: &PackMeta, op: CmpOp, lit: &Value) -> Cut {
    if meta.min.is_null() {
        return Cut::None; // all-null pack: comparisons never match
    }
    let lo = meta.min.cmp(lit);
    let hi = meta.max.cmp(lit);
    let none = match op {
        CmpOp::Eq => hi == Ordering::Less || lo == Ordering::Greater,
        CmpOp::Ne => lo == Ordering::Equal && hi == Ordering::Equal,
        CmpOp::Lt => lo != Ordering::Less,
        CmpOp::Le => lo == Ordering::Greater,
        CmpOp::Gt => hi != Ordering::Greater,
        CmpOp::Ge => hi == Ordering::Less,
    };
    if none {
        return Cut::None;
    }
    if meta.null_count > 0 {
        return Cut::Row; // nulls never match: must test per row
    }
    let all = match op {
        CmpOp::Eq => lo == Ordering::Equal && hi == Ordering::Equal,
        CmpOp::Ne => hi == Ordering::Less || lo == Ordering::Greater,
        CmpOp::Lt => hi == Ordering::Less,
        CmpOp::Le => hi != Ordering::Greater,
        CmpOp::Gt => lo == Ordering::Greater,
        CmpOp::Ge => lo != Ordering::Less,
    };
    if all {
        Cut::All
    } else {
        Cut::Row
    }
}

/// All non-null rows compare as `ord` to the literal (range disjoint or
/// cross-type): keep everything or nothing, minus nulls.
fn const_ord(op: CmpOp, ord: Ordering, mut sel: SelVec, is_null: impl Fn(u32) -> bool) -> SelVec {
    if !op.test(ord) {
        return SelVec::new();
    }
    sel.retain(|i| !is_null(i));
    sel
}

fn cmp_sel(op: CmpOp, col: &ColView, lit: &Value, mut sel: SelVec) -> SelVec {
    if lit.is_null() {
        return SelVec::new(); // NULL comparand: three-valued false
    }
    match col {
        ColView::Pack(p) => {
            match meta_cut_cmp(&p.meta, op, lit) {
                Cut::All => return sel,
                Cut::None => return SelVec::new(),
                Cut::Row => {}
            }
            let no_nulls = p.meta.null_count == 0;
            match (&p.data, lit) {
                // Frame-of-reference rewrite: `base + r op k` becomes a
                // u64 compare of the packed residual against `k - base`.
                (
                    PackData::Int {
                        base,
                        packed,
                        nulls,
                    },
                    Value::Int(k) | Value::Date(k),
                ) => {
                    let d = (*k as i128) - (*base as i128);
                    if d < 0 {
                        // every non-null row sits above the literal
                        return const_ord(op, Ordering::Greater, sel, |i| nulls.get(i as usize));
                    }
                    if d > u64::MAX as i128 {
                        return const_ord(op, Ordering::Less, sel, |i| nulls.get(i as usize));
                    }
                    let du = d as u64;
                    // Dense full-pack selection: walk the packed words
                    // with the bulk-unpack cursor instead of per-row
                    // index math.
                    if no_nulls && sel.len() == packed.len {
                        let mut out = Vec::with_capacity(packed.len);
                        let mut i = 0u32;
                        packed.unpack_each(|r| {
                            if op.test(r.cmp(&du)) {
                                out.push(i);
                            }
                            i += 1;
                        });
                        return SelVec::from_sorted(out);
                    }
                    if no_nulls {
                        sel.retain(|i| op.test(packed.get(i as usize).cmp(&du)));
                    } else {
                        sel.retain(|i| {
                            !nulls.get(i as usize) && op.test(packed.get(i as usize).cmp(&du))
                        });
                    }
                    sel
                }
                // Int column vs double literal: MySQL-style float
                // comparison; decode stays per-row but gathers nothing.
                (
                    PackData::Int {
                        base,
                        packed,
                        nulls,
                    },
                    Value::Double(k),
                ) => {
                    let test = |i: u32| {
                        let v = base.wrapping_add(packed.get(i as usize) as i64) as f64;
                        op.test(v.total_cmp(k))
                    };
                    if no_nulls {
                        sel.retain(test);
                    } else {
                        sel.retain(|i| !nulls.get(i as usize) && test(i));
                    }
                    sel
                }
                // Numeric column vs string literal: numerics order below
                // strings in SQL comparisons here — constant outcome.
                (PackData::Int { nulls, .. }, Value::Str(_)) => {
                    const_ord(op, Ordering::Less, sel, |i| nulls.get(i as usize))
                }
                (PackData::Double { vals, nulls }, _) => match lit.as_f64() {
                    Some(k) => {
                        if no_nulls {
                            sel.retain(|i| op.test(vals[i as usize].total_cmp(&k)));
                        } else {
                            sel.retain(|i| {
                                !nulls.get(i as usize) && op.test(vals[i as usize].total_cmp(&k))
                            });
                        }
                        sel
                    }
                    None => const_ord(op, Ordering::Less, sel, |i| nulls.get(i as usize)),
                },
                // Dictionary rewrite: resolve the predicate once per
                // dictionary entry; each row test is a code lookup.
                (PackData::Str { codes, dict, nulls }, Value::Str(s)) => {
                    let matches: Vec<bool> =
                        dict.iter().map(|e| op.test(e.as_str().cmp(s))).collect();
                    if no_nulls {
                        sel.retain(|i| matches[codes.get(i as usize) as usize]);
                    } else {
                        sel.retain(|i| {
                            !nulls.get(i as usize) && matches[codes.get(i as usize) as usize]
                        });
                    }
                    sel
                }
                (PackData::Str { nulls, .. }, _) => {
                    const_ord(op, Ordering::Greater, sel, |i| nulls.get(i as usize))
                }
                (_, Value::Null) => SelVec::new(), // handled above
            }
        }
        ColView::Col(c) => match (c, lit) {
            (ColumnData::Int { vals, nulls }, Value::Int(k) | Value::Date(k)) => {
                sel.retain(|i| {
                    let i = i as usize;
                    i < vals.len() && !nulls[i] && op.test(vals[i].cmp(k))
                });
                sel
            }
            (ColumnData::Int { vals, nulls }, Value::Double(k)) => {
                sel.retain(|i| {
                    let i = i as usize;
                    i < vals.len() && !nulls[i] && op.test((vals[i] as f64).total_cmp(k))
                });
                sel
            }
            (ColumnData::Int { vals, nulls }, Value::Str(_)) => {
                const_ord(op, Ordering::Less, sel, |i| {
                    let i = i as usize;
                    i >= vals.len() || nulls[i]
                })
            }
            (ColumnData::Double { vals, nulls }, _) => match lit.as_f64() {
                Some(k) => {
                    sel.retain(|i| {
                        let i = i as usize;
                        i < vals.len() && !nulls[i] && op.test(vals[i].total_cmp(&k))
                    });
                    sel
                }
                None => const_ord(op, Ordering::Less, sel, |i| {
                    let i = i as usize;
                    i >= vals.len() || nulls[i]
                }),
            },
            (ColumnData::Str { codes, nulls, dict }, Value::Str(s)) => {
                let matches: Vec<bool> = dict
                    .strings()
                    .iter()
                    .map(|e| op.test(e.as_str().cmp(s.as_str())))
                    .collect();
                sel.retain(|i| {
                    let i = i as usize;
                    i < codes.len() && !nulls[i] && matches[codes[i] as usize]
                });
                sel
            }
            (ColumnData::Str { codes, nulls, .. }, _) => {
                const_ord(op, Ordering::Greater, sel, |i| {
                    let i = i as usize;
                    i >= codes.len() || nulls[i]
                })
            }
            (_, Value::Null) => SelVec::new(), // handled above
        },
    }
}

fn inlist_sel(col: &ColView, list: &[Value], mut sel: SelVec) -> SelVec {
    match col {
        ColView::Pack(p) => match &p.data {
            PackData::Int {
                base,
                packed,
                nulls,
            } => {
                // Rewrite the list into the residual domain once; values
                // outside the pack's representable range can never match.
                let mut targets: Vec<u64> = list
                    .iter()
                    .filter_map(|v| v.as_int())
                    .filter_map(|k| {
                        let d = (k as i128) - (*base as i128);
                        (0..=u64::MAX as i128).contains(&d).then_some(d as u64)
                    })
                    .collect();
                targets.sort_unstable();
                targets.dedup();
                if targets.is_empty() {
                    return SelVec::new();
                }
                let no_nulls = p.meta.null_count == 0;
                if no_nulls {
                    sel.retain(|i| targets.binary_search(&packed.get(i as usize)).is_ok());
                } else {
                    sel.retain(|i| {
                        !nulls.get(i as usize)
                            && targets.binary_search(&packed.get(i as usize)).is_ok()
                    });
                }
                sel
            }
            PackData::Double { vals, nulls } => {
                let targets: Vec<f64> = list
                    .iter()
                    .filter_map(|v| match v {
                        Value::Double(d) => Some(*d),
                        _ => None,
                    })
                    .collect();
                sel.retain(|i| {
                    let i = i as usize;
                    !nulls.get(i) && targets.iter().any(|t| vals[i].total_cmp(t).is_eq())
                });
                sel
            }
            PackData::Str { codes, dict, nulls } => {
                let matches: Vec<bool> = dict
                    .iter()
                    .map(|e| list.iter().any(|v| v.as_str() == Some(e.as_str())))
                    .collect();
                sel.retain(|i| {
                    let i = i as usize;
                    !nulls.get(i) && matches[codes.get(i) as usize]
                });
                sel
            }
        },
        ColView::Col(c) => match c {
            ColumnData::Int { vals, nulls } => {
                let mut targets: Vec<i64> = list.iter().filter_map(|v| v.as_int()).collect();
                targets.sort_unstable();
                targets.dedup();
                sel.retain(|i| {
                    let i = i as usize;
                    i < vals.len() && !nulls[i] && targets.binary_search(&vals[i]).is_ok()
                });
                sel
            }
            ColumnData::Double { vals, nulls } => {
                let targets: Vec<f64> = list
                    .iter()
                    .filter_map(|v| match v {
                        Value::Double(d) => Some(*d),
                        _ => None,
                    })
                    .collect();
                sel.retain(|i| {
                    let i = i as usize;
                    i < vals.len()
                        && !nulls[i]
                        && targets.iter().any(|t| vals[i].total_cmp(t).is_eq())
                });
                sel
            }
            ColumnData::Str { codes, nulls, dict } => {
                let matches: Vec<bool> = dict
                    .strings()
                    .iter()
                    .map(|e| list.iter().any(|v| v.as_str() == Some(e.as_str())))
                    .collect();
                sel.retain(|i| {
                    let i = i as usize;
                    i < codes.len() && !nulls[i] && matches[codes[i] as usize]
                });
                sel
            }
        },
    }
}

fn like_sel(col: &ColView, pat: &LikePattern, mut sel: SelVec) -> SelVec {
    match col {
        ColView::Pack(p) => match &p.data {
            PackData::Str { codes, dict, nulls } => {
                let matches: Vec<bool> = dict.iter().map(|e| pat.matches(e)).collect();
                sel.retain(|i| {
                    let i = i as usize;
                    !nulls.get(i) && matches[codes.get(i) as usize]
                });
                sel
            }
            // LIKE over a non-string column is constant false.
            _ => SelVec::new(),
        },
        ColView::Col(c) => match c {
            ColumnData::Str { codes, nulls, dict } => {
                let matches: Vec<bool> = dict.strings().iter().map(|e| pat.matches(e)).collect();
                sel.retain(|i| {
                    let i = i as usize;
                    i < codes.len() && !nulls[i] && matches[codes[i] as usize]
                });
                sel
            }
            _ => SelVec::new(),
        },
    }
}

fn isnull_sel(col: &ColView, negated: bool, mut sel: SelVec) -> SelVec {
    match col {
        ColView::Pack(p) => {
            let nulls = match &p.data {
                PackData::Int { nulls, .. }
                | PackData::Double { nulls, .. }
                | PackData::Str { nulls, .. } => nulls,
            };
            sel.retain(|i| nulls.get(i as usize) != negated);
            sel
        }
        ColView::Col(c) => {
            let (n, nulls) = match c {
                ColumnData::Int { nulls, .. }
                | ColumnData::Double { nulls, .. }
                | ColumnData::Str { nulls, .. } => (nulls.len(), nulls),
            };
            sel.retain(|i| {
                let i = i as usize;
                (i >= n || nulls[i]) != negated
            });
            sel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::DataType;

    fn int_pack(vals: &[Option<i64>]) -> Pack {
        let mut col = ColumnData::new(DataType::Int);
        for (i, v) in vals.iter().enumerate() {
            let v = v.map(Value::Int).unwrap_or(Value::Null);
            col.set(i, &v).unwrap();
        }
        Pack::seal(&col)
    }

    fn str_pack(vals: &[Option<&str>]) -> Pack {
        let mut col = ColumnData::new(DataType::Str);
        for (i, v) in vals.iter().enumerate() {
            let v = v.map(|s| Value::Str(s.into())).unwrap_or(Value::Null);
            col.set(i, &v).unwrap();
        }
        Pack::seal(&col)
    }

    fn sel_of(p: &Pack, e: &Expr, sel: SelVec) -> Vec<u32> {
        let cols = [ColView::Pack(p)];
        assert!(compressible(e, &cols));
        eval_sel(e, &cols, sel).unwrap().into_vec()
    }

    #[test]
    fn for_domain_int_compare() {
        let p = int_pack(&[Some(100), Some(105), None, Some(110), Some(120)]);
        let lt = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(110i64));
        assert_eq!(sel_of(&p, &lt, SelVec::identity(5)), vec![0, 1]);
        // literal below base: Gt matches all non-null, Lt none
        let gt = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(-5i64));
        assert_eq!(sel_of(&p, &gt, SelVec::identity(5)), vec![0, 1, 3, 4]);
        let lt0 = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(-5i64));
        assert!(sel_of(&p, &lt0, SelVec::identity(5)).is_empty());
        // flipped literal-first comparison
        let flipped = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::lit(110i64)),
            Box::new(Expr::col(0)),
        );
        assert_eq!(sel_of(&p, &flipped, SelVec::identity(5)), vec![0, 1]);
    }

    #[test]
    fn all_match_short_circuit_respects_partial_visibility() {
        // Every row satisfies the predicate; the selection (partial
        // visibility: rows 1 and 3 deleted) must come back unchanged —
        // never resurrecting unselected rows.
        let p = int_pack(&[Some(10), Some(11), Some(12), Some(13), Some(14)]);
        let e = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(0i64));
        let partial = SelVec::from_sorted(vec![0, 2, 4]);
        assert_eq!(sel_of(&p, &e, partial.clone()), vec![0, 2, 4]);
        // And the none-match dual empties it.
        let none = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(100i64));
        assert!(sel_of(&p, &none, partial).is_empty());
    }

    #[test]
    fn all_match_needs_null_free_pack() {
        let p = int_pack(&[Some(10), None, Some(12)]);
        let e = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(0i64));
        // Row 1 is NULL: even though min/max satisfy the range, the
        // kernel must drop it.
        assert_eq!(sel_of(&p, &e, SelVec::identity(3)), vec![0, 2]);
    }

    #[test]
    fn width_zero_all_equal_column() {
        let p = int_pack(&[Some(7), Some(7), Some(7)]);
        let eq = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(7i64));
        assert_eq!(sel_of(&p, &eq, SelVec::identity(3)), vec![0, 1, 2]);
        let ne = Expr::cmp(CmpOp::Ne, Expr::col(0), Expr::lit(7i64));
        assert!(sel_of(&p, &ne, SelVec::identity(3)).is_empty());
    }

    #[test]
    fn dictionary_predicates() {
        let p = str_pack(&[Some("apple"), Some("banana"), None, Some("apricot")]);
        let eq = Expr::cmp(
            CmpOp::Eq,
            Expr::col(0),
            Expr::Lit(Value::Str("banana".into())),
        );
        assert_eq!(sel_of(&p, &eq, SelVec::identity(4)), vec![1]);
        let like = Expr::Like(Box::new(Expr::col(0)), LikePattern::parse("ap%").unwrap());
        assert_eq!(sel_of(&p, &like, SelVec::identity(4)), vec![0, 3]);
        let inl = Expr::InList(
            Box::new(Expr::col(0)),
            vec![Value::Str("apple".into()), Value::Str("cherry".into())],
        );
        assert_eq!(sel_of(&p, &inl, SelVec::identity(4)), vec![0]);
    }

    #[test]
    fn boolean_connectives_and_null_collapse() {
        let p = int_pack(&[Some(1), Some(2), None, Some(4), Some(5)]);
        let lo = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(2i64));
        let hi = Expr::cmp(CmpOp::Le, Expr::col(0), Expr::lit(4i64));
        let and = lo.clone().and(hi.clone());
        assert_eq!(sel_of(&p, &and, SelVec::identity(5)), vec![1, 3]);
        let or = Expr::Or(
            Box::new(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(1i64))),
            Box::new(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(5i64))),
        );
        assert_eq!(sel_of(&p, &or, SelVec::identity(5)), vec![0, 4]);
        // NOT over a predicate that skipped the NULL row keeps the NULL
        // row — same collapse eval_mask performs.
        let not = Expr::Not(Box::new(and));
        assert_eq!(sel_of(&p, &not, SelVec::identity(5)), vec![0, 2, 4]);
        // BETWEEN == >= AND <=
        let between = Expr::Between(Box::new(Expr::col(0)), Value::Int(2), Value::Int(4));
        assert_eq!(sel_of(&p, &between, SelVec::identity(5)), vec![1, 3]);
        // IS NULL / IS NOT NULL
        let isnull = Expr::IsNull(Box::new(Expr::col(0)), false);
        assert_eq!(sel_of(&p, &isnull, SelVec::identity(5)), vec![2]);
        let notnull = Expr::IsNull(Box::new(Expr::col(0)), true);
        assert_eq!(sel_of(&p, &notnull, SelVec::identity(5)), vec![0, 1, 3, 4]);
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let p = int_pack(&[Some(1)]);
        let cols = [ColView::Pack(&p)];
        let col_col = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::col(0));
        assert!(!compressible(&col_col, &cols));
        let arith = Expr::Arith(
            crate::expr::ArithOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(1i64)),
        );
        assert!(!compressible(&arith, &cols));
        // mixed-class IN list keeps generic semantics
        let mixed = Expr::InList(
            Box::new(Expr::col(0)),
            vec![Value::Int(1), Value::Double(2.0)],
        );
        assert!(!compressible(&mixed, &cols));
        // out-of-range column reference
        let oob = Expr::cmp(CmpOp::Eq, Expr::col(3), Expr::lit(1i64));
        assert!(!compressible(&oob, &cols));
    }
}
