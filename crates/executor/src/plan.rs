//! Physical plans for the column (batch-mode) engine.

use crate::expr::Expr;
use imci_common::{TableId, Value};

/// A min/max pruning range on a scanned column (position within the
/// column index's covered columns). Derived from WHERE conjuncts; lets
/// TableScan skip whole packs via their metadata (paper §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PruneRange {
    /// Covered-column position the range constrains.
    pub col: usize,
    /// Lower bound (inclusive), if any.
    pub lo: Option<Value>,
    /// Upper bound (inclusive), if any.
    pub hi: Option<Value>,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Function.
    pub func: AggFunc,
    /// Argument (None only for COUNT(*)).
    pub arg: Option<Expr>,
    /// COUNT(DISTINCT expr).
    pub distinct: bool,
}

/// Physical operator tree of the column engine.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Parallel scan over a column index. Output columns are
    /// `cols` (positions within the index's covered columns), in order.
    ColumnScan {
        /// Table to scan.
        table: TableId,
        /// Covered-column positions to materialize.
        cols: Vec<usize>,
        /// Min/max pack pruning ranges (positions within `cols`... no:
        /// positions within covered columns; see `PruneRange::col`).
        prune: Vec<PruneRange>,
        /// Residual filter over the output columns (by output position).
        filter: Option<Expr>,
    },
    /// Row filter.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Predicate over input columns.
        pred: Expr,
    },
    /// Projection / expression evaluation.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Output expressions over input columns.
        exprs: Vec<Expr>,
    },
    /// Hash equi-join (inner). Output = left columns ++ right columns.
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Probe key column positions.
        left_keys: Vec<usize>,
        /// Build key column positions.
        right_keys: Vec<usize>,
    },
    /// Hash aggregation. Output = group-by values ++ aggregate values.
    HashAgg {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Grouping expressions.
        group_by: Vec<Expr>,
        /// Aggregates.
        aggs: Vec<AggCall>,
    },
    /// Sort (optionally top-N).
    Sort {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Sort keys: (column position, descending).
        keys: Vec<(usize, bool)>,
        /// Optional row limit applied after the sort.
        limit: Option<usize>,
    },
    /// Row limit without sorting.
    Limit {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Max rows.
        n: usize,
    },
}

impl PhysicalPlan {
    /// Rough operator count (used in Table 2-style plan statistics).
    pub fn op_count(&self) -> usize {
        1 + match self {
            PhysicalPlan::ColumnScan { .. } => 0,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAgg { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.op_count(),
            PhysicalPlan::HashJoin { left, right, .. } => left.op_count() + right.op_count(),
        }
    }

    /// Number of joins in the plan.
    pub fn join_count(&self) -> usize {
        match self {
            PhysicalPlan::ColumnScan { .. } => 0,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAgg { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.join_count(),
            PhysicalPlan::HashJoin { left, right, .. } => {
                1 + left.join_count() + right.join_count()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_and_join_counts() {
        let scan = |t: u64| PhysicalPlan::ColumnScan {
            table: TableId(t),
            cols: vec![0],
            prune: vec![],
            filter: None,
        };
        let join = PhysicalPlan::HashJoin {
            left: Box::new(scan(1)),
            right: Box::new(scan(2)),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let agg = PhysicalPlan::HashAgg {
            input: Box::new(join),
            group_by: vec![],
            aggs: vec![AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        };
        assert_eq!(agg.op_count(), 4);
        assert_eq!(agg.join_count(), 1);
    }
}
