//! Physical plans for the column (batch-mode) engine.

use crate::expr::Expr;
use imci_common::{TableId, Value};

/// A min/max pruning range on a scanned column (position within the
/// column index's covered columns). Derived from WHERE conjuncts; lets
/// TableScan skip whole packs via their metadata (paper §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PruneRange {
    /// Covered-column position the range constrains.
    pub col: usize,
    /// Lower bound (inclusive), if any.
    pub lo: Option<Value>,
    /// Upper bound (inclusive), if any.
    pub hi: Option<Value>,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Function.
    pub func: AggFunc,
    /// Argument (None only for COUNT(*)).
    pub arg: Option<Expr>,
    /// COUNT(DISTINCT expr).
    pub distinct: bool,
}

/// Physical operator tree of the column engine.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Parallel scan over a column index. Output columns are
    /// `cols` (positions within the index's covered columns), in order.
    ColumnScan {
        /// Table to scan.
        table: TableId,
        /// Covered-column positions to materialize.
        cols: Vec<usize>,
        /// Min/max pack pruning ranges. NOTE: `PruneRange::col` is a
        /// position within the index's *covered columns* (the same
        /// space `cols` entries live in), not a position within `cols`
        /// — the two coincide only when the scan materializes every
        /// covered column in order.
        prune: Vec<PruneRange>,
        /// Residual filter over the output columns (by output position).
        filter: Option<Expr>,
    },
    /// Row filter.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Predicate over input columns.
        pred: Expr,
    },
    /// Projection / expression evaluation.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Output expressions over input columns.
        exprs: Vec<Expr>,
    },
    /// Hash equi-join (inner).
    ///
    /// Output-column contract: all of `left`'s columns first (by input
    /// position), then all of `right`'s — consumers address build-side
    /// columns at `left_width + i`. Output rows come in probe-row
    /// order, and a probe row's matches appear in build-row order;
    /// both hold for the serial and the hash-partitioned parallel
    /// build, so plans downstream may rely on the order.
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Probe key column positions.
        left_keys: Vec<usize>,
        /// Build key column positions.
        right_keys: Vec<usize>,
    },
    /// Hash aggregation.
    ///
    /// Output-column contract: the group-by values first (in `group_by`
    /// order), then one column per aggregate (in `aggs` order). Output
    /// rows are sorted by the group key, which makes results
    /// deterministic across hash-map iteration orders *and* across
    /// serial/partial-parallel execution.
    HashAgg {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Grouping expressions.
        group_by: Vec<Expr>,
        /// Aggregates.
        aggs: Vec<AggCall>,
    },
    /// Sort (optionally top-N).
    Sort {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Sort keys: (column position, descending).
        keys: Vec<(usize, bool)>,
        /// Optional row limit applied after the sort.
        limit: Option<usize>,
    },
    /// Row limit without sorting.
    Limit {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Max rows.
        n: usize,
    },
}

impl PhysicalPlan {
    /// Rough operator count (used in Table 2-style plan statistics).
    pub fn op_count(&self) -> usize {
        1 + match self {
            PhysicalPlan::ColumnScan { .. } => 0,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAgg { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.op_count(),
            PhysicalPlan::HashJoin { left, right, .. } => left.op_count() + right.op_count(),
        }
    }

    /// Is every operator in this plan safe to run with morsel
    /// parallelism? All current operators are: each parallel path has a
    /// deterministic merge that reproduces serial output exactly (see
    /// the `HashJoin`/`HashAgg` contracts and the executor's top-K
    /// argument). The planner still consults this before handing a
    /// parallelism budget to the executor, so a future operator without
    /// a parallel-safe merge degrades to serial instead of silently
    /// reordering results.
    pub fn parallel_safe(&self) -> bool {
        match self {
            PhysicalPlan::ColumnScan { .. } => true,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAgg { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.parallel_safe(),
            PhysicalPlan::HashJoin { left, right, .. } => {
                left.parallel_safe() && right.parallel_safe()
            }
        }
    }

    /// One `EXPLAIN` line for this node alone (no children, no indent).
    fn describe(&self) -> String {
        match self {
            PhysicalPlan::ColumnScan {
                table,
                cols,
                prune,
                filter,
            } => {
                let mut s = format!("ColumnScan table={} cols={}", table.0, cols.len());
                if !prune.is_empty() {
                    s.push_str(&format!(" prune={}", prune.len()));
                }
                if filter.is_some() {
                    s.push_str(" filter=pushed");
                }
                s
            }
            PhysicalPlan::Filter { .. } => "Filter".to_string(),
            PhysicalPlan::Project { exprs, .. } => format!("Project exprs={}", exprs.len()),
            PhysicalPlan::HashJoin { left_keys, .. } => {
                format!("HashJoin keys={}", left_keys.len())
            }
            PhysicalPlan::HashAgg { group_by, aggs, .. } => {
                format!("HashAgg groups={} aggs={}", group_by.len(), aggs.len())
            }
            PhysicalPlan::Sort { keys, limit, .. } => match limit {
                Some(k) => format!("TopK keys={} limit={k}", keys.len()),
                None => format!("Sort keys={}", keys.len()),
            },
            PhysicalPlan::Limit { n, .. } => format!("Limit n={n}"),
        }
    }

    /// `EXPLAIN` rendering: one line per operator, pre-order, indented
    /// two spaces per tree level. Line `i` is the operator with
    /// pre-order id `i` — the id space `ExecStats` counters use — with
    /// a join's probe subtree before its build subtree.
    pub fn explain(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.op_count());
        self.explain_into(0, &mut lines);
        lines
    }

    fn explain_into(&self, depth: usize, lines: &mut Vec<String>) {
        lines.push(format!("{}{}", "  ".repeat(depth), self.describe()));
        match self {
            PhysicalPlan::ColumnScan { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAgg { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.explain_into(depth + 1, lines),
            PhysicalPlan::HashJoin { left, right, .. } => {
                left.explain_into(depth + 1, lines);
                right.explain_into(depth + 1, lines);
            }
        }
    }

    /// Number of joins in the plan.
    pub fn join_count(&self) -> usize {
        match self {
            PhysicalPlan::ColumnScan { .. } => 0,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAgg { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.join_count(),
            PhysicalPlan::HashJoin { left, right, .. } => {
                1 + left.join_count() + right.join_count()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_and_join_counts() {
        let scan = |t: u64| PhysicalPlan::ColumnScan {
            table: TableId(t),
            cols: vec![0],
            prune: vec![],
            filter: None,
        };
        let join = PhysicalPlan::HashJoin {
            left: Box::new(scan(1)),
            right: Box::new(scan(2)),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let agg = PhysicalPlan::HashAgg {
            input: Box::new(join),
            group_by: vec![],
            aggs: vec![AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        };
        assert_eq!(agg.op_count(), 4);
        assert_eq!(agg.join_count(), 1);
        assert!(agg.parallel_safe());
    }

    #[test]
    fn explain_lines_follow_preorder_ids() {
        let scan = |t: u64| PhysicalPlan::ColumnScan {
            table: TableId(t),
            cols: vec![0, 1],
            prune: vec![],
            filter: None,
        };
        let plan = PhysicalPlan::HashAgg {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(scan(1)),
                right: Box::new(PhysicalPlan::Filter {
                    input: Box::new(scan(2)),
                    pred: Expr::Lit(Value::Int(1)),
                }),
                left_keys: vec![0],
                right_keys: vec![0],
            }),
            group_by: vec![Expr::Col(1)],
            aggs: vec![AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        };
        let lines = plan.explain();
        assert_eq!(lines.len(), plan.op_count());
        // Pre-order: agg(0), join(1), probe scan(2), filter(3), build
        // scan(4) — matching exec's op-id assignment exactly.
        assert_eq!(lines[0], "HashAgg groups=1 aggs=1");
        assert_eq!(lines[1], "  HashJoin keys=1");
        assert_eq!(lines[2], "    ColumnScan table=1 cols=2");
        assert_eq!(lines[3], "    Filter");
        assert_eq!(lines[4], "      ColumnScan table=2 cols=2");
    }
}
