//! Batch-mode execution of physical plans (paper §6.3).
//!
//! The plan tree is decomposed into pipelines at blocking operators
//! (join build, aggregation, sort): scans stream one batch per row
//! group through the non-blocking operators above them, in parallel
//! across groups ("TableScan can concurrently fetch Data Packs in a
//! non-interleaved manner"). Pack min/max metadata prunes groups before
//! any data is touched.

use crate::batch::Batch;
use crate::expr::Expr;
use crate::kernels::{self, ColView};
use crate::plan::{AggCall, AggFunc, PhysicalPlan, PruneRange};
use imci_common::{Error, FxHashMap, Result, TableId, Value};
use imci_core::{ColumnData, ColumnRead, SelVec, Snapshot};
use std::sync::Arc;

/// Execution context: pinned snapshots + tuning.
pub struct ExecContext {
    /// One snapshot per table touched by the query (consistent view).
    pub snapshots: FxHashMap<TableId, Arc<Snapshot>>,
    /// Scan parallelism (worker threads over row groups).
    pub parallelism: usize,
    /// Min/max pack pruning (ablation switch).
    pub prune_enabled: bool,
    /// Late materialization (ablation switch): evaluate scan filters on
    /// the compressed packs and gather payload columns only for
    /// surviving rows. Off = decode-then-filter baseline.
    pub late_materialization: bool,
}

impl ExecContext {
    /// Context over the given snapshots with default tuning.
    pub fn new(snapshots: FxHashMap<TableId, Arc<Snapshot>>) -> ExecContext {
        ExecContext {
            snapshots,
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            prune_enabled: true,
            late_materialization: true,
        }
    }

    fn snapshot(&self, table: TableId) -> Result<&Arc<Snapshot>> {
        self.snapshots
            .get(&table)
            .ok_or_else(|| Error::Execution(format!("no snapshot for table {table}")))
    }
}

/// Execute a plan to a fully-materialized result batch.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Batch> {
    let batches = exec_stream(plan, ctx)?;
    Batch::concat(&batches)
}

/// Execute returning per-pipeline batches (avoids the final concat for
/// consumers that stream).
pub fn exec_stream(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Vec<Batch>> {
    match plan {
        PhysicalPlan::ColumnScan {
            table,
            cols,
            prune,
            filter,
        } => scan(ctx, *table, cols, prune, filter.as_ref()),
        PhysicalPlan::Filter { input, pred } => {
            let mut out = Vec::new();
            for b in exec_stream(input, ctx)? {
                // Selection-vector path: typed kernels (dictionary-aware
                // for strings) straight to one gather per column.
                let views = kernels::batch_views(&b);
                let f = if ctx.late_materialization && kernels::compressible(pred, &views) {
                    let sel = kernels::eval_sel(pred, &views, SelVec::identity(b.len))?;
                    b.take(&sel)
                } else {
                    let mask = pred.eval_mask(&b)?;
                    b.filter(&mask)?
                };
                if f.len > 0 {
                    out.push(f);
                }
            }
            Ok(out)
        }
        PhysicalPlan::Project { input, exprs } => {
            let mut out = Vec::new();
            for b in exec_stream(input, ctx)? {
                let cols = exprs
                    .iter()
                    .map(|e| e.eval(&b))
                    .collect::<Result<Vec<ColumnData>>>()?;
                out.push(Batch { cols, len: b.len });
            }
            Ok(out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => hash_join(ctx, left, right, left_keys, right_keys),
        PhysicalPlan::HashAgg {
            input,
            group_by,
            aggs,
        } => hash_agg(ctx, input, group_by, aggs).map(|b| vec![b]),
        PhysicalPlan::Sort { input, keys, limit } => {
            let all = Batch::concat(&exec_stream(input, ctx)?)?;
            sort_batch(all, keys, *limit).map(|b| vec![b])
        }
        PhysicalPlan::Limit { input, n } => {
            let mut out = Vec::new();
            let mut remaining = *n;
            for b in exec_stream(input, ctx)? {
                if remaining == 0 {
                    break;
                }
                if b.len <= remaining {
                    remaining -= b.len;
                    out.push(b);
                } else {
                    let mut b = b;
                    b.truncate(remaining);
                    out.push(b);
                    remaining = 0;
                }
            }
            Ok(out)
        }
    }
}

fn scan(
    ctx: &ExecContext,
    table: TableId,
    cols: &[usize],
    prune: &[PruneRange],
    filter: Option<&Expr>,
) -> Result<Vec<Batch>> {
    let snap = ctx.snapshot(table)?;
    let groups = snap.groups();
    let csn = snap.csn;
    let n_workers = ctx.parallelism.clamp(1, groups.len().max(1));
    let prune_enabled = ctx.prune_enabled;
    let late_mat = ctx.late_materialization;

    let results: Vec<Result<Option<Batch>>> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let groups = &groups;
            let handle = s.spawn(move || {
                let mut local: Vec<Result<Option<Batch>>> = Vec::new();
                let mut gi = w;
                while gi < groups.len() {
                    local.push(scan_group(
                        &groups[gi],
                        csn,
                        cols,
                        prune,
                        filter,
                        prune_enabled,
                        late_mat,
                    ));
                    gi += n_workers;
                }
                local
            });
            handles.push(handle);
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });

    let mut out = Vec::new();
    for r in results {
        if let Some(b) = r? {
            if b.len > 0 {
                out.push(b);
            }
        }
    }
    Ok(out)
}

fn scan_group(
    group: &imci_core::RowGroup,
    csn: u64,
    cols: &[usize],
    prune: &[PruneRange],
    filter: Option<&Expr>,
    prune_enabled: bool,
    late_materialization: bool,
) -> Result<Option<Batch>> {
    if group.is_reclaimed() {
        return Ok(None);
    }
    // Pack pruning: skip the whole group if any constrained column's
    // min/max range proves no row can match (sealed groups only — the
    // partial group has no sealed metadata).
    if prune_enabled && group.is_sealed() {
        for pr in prune {
            if let Some(pack) = group.column_pack(pr.col) {
                if !pack.meta.may_contain_range(pr.lo.as_ref(), pr.hi.as_ref()) {
                    return Ok(None);
                }
            }
        }
    }
    let visible = group.visible_offsets(csn);
    if visible.is_empty() {
        return Ok(None);
    }
    let reads: Vec<ColumnRead> = cols.iter().map(|&c| group.read_column(c)).collect();
    if !late_materialization {
        return scan_group_early_mat(&reads, &visible, filter);
    }
    // Late materialization: refine the visibility selection with the
    // predicate kernels over the *compressed* packs, then gather every
    // requested column exactly once, at the surviving offsets only.
    let sel = match filter {
        None => visible,
        Some(f) => {
            let views: Vec<ColView> = reads.iter().map(ColView::of).collect();
            if kernels::compressible(f, &views) {
                kernels::eval_sel(f, &views, visible)?
            } else {
                // Fallback for non-kernel shapes (arithmetic, col/col
                // compares): materialize only the filter's columns at
                // the visible offsets, mask, and still late-gather the
                // full payload.
                let mut refs = Vec::new();
                f.referenced_cols(&mut refs);
                refs.sort_unstable();
                refs.dedup();
                let sub = Batch {
                    cols: refs.iter().map(|&j| reads[j].gather(&visible)).collect(),
                    len: visible.len(),
                };
                let remapped = f.remap(&|j| refs.binary_search(&j).unwrap_or(0));
                let mask = remapped.eval_mask(&sub)?;
                let kept: Vec<u32> = visible
                    .iter()
                    .zip(mask)
                    .filter(|&(_, m)| m)
                    .map(|(i, _)| i)
                    .collect();
                SelVec::from_sorted(kept)
            }
        }
    };
    if sel.is_empty() {
        return Ok(None);
    }
    let out_cols: Vec<ColumnData> = reads.iter().map(|r| r.gather(&sel)).collect();
    Ok(Some(Batch {
        cols: out_cols,
        len: sel.len(),
    }))
}

/// Ablation baseline (the pre-selection-vector pipeline): decode every
/// requested column at all visible offsets, evaluate the filter as a
/// bool mask over the materialized batch, then gather a second time.
fn scan_group_early_mat(
    reads: &[ColumnRead],
    visible: &SelVec,
    filter: Option<&Expr>,
) -> Result<Option<Batch>> {
    let out_cols: Vec<ColumnData> = reads.iter().map(|r| r.gather(visible)).collect();
    let batch = Batch {
        cols: out_cols,
        len: visible.len(),
    };
    match filter {
        Some(f) => {
            let mask = f.eval_mask(&batch)?;
            Ok(Some(batch.filter(&mask)?))
        }
        None => Ok(Some(batch)),
    }
}

fn hash_join(
    ctx: &ExecContext,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Vec<Batch>> {
    // Build phase (blocking): materialize the right side.
    let build = Batch::concat(&exec_stream(right, ctx)?)?;
    // Fast path: single integer join key (the common case — all PK/FK
    // joins). Typed build + probe, gather-based output construction.
    let int_key = right_keys.len() == 1
        && matches!(build.cols.get(right_keys[0]), Some(ColumnData::Int { .. }));
    let mut int_table: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
    let mut gen_table: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
    if int_key {
        if let ColumnData::Int { vals, nulls } = &build.cols[right_keys[0]] {
            for r in 0..build.len {
                if !nulls[r] {
                    int_table.entry(vals[r]).or_default().push(r as u32);
                }
            }
        }
    } else {
        for r in 0..build.len {
            let key: Vec<Value> = right_keys.iter().map(|&k| build.cols[k].get(r)).collect();
            if key.iter().any(|v| v.is_null()) {
                continue; // SQL: NULL keys never join
            }
            gen_table.entry(key).or_default().push(r as u32);
        }
    }
    // Probe phase: stream left batches; emit index pairs, then build the
    // joined batch with typed gathers (no per-cell Value boxing).
    let mut out = Vec::new();
    for lb in exec_stream(left, ctx)? {
        let mut lidx: Vec<u32> = Vec::new();
        let mut ridx: Vec<u32> = Vec::new();
        if int_key {
            // Left key may be Int storage or need generic access.
            match &lb.cols[left_keys[0]] {
                ColumnData::Int { vals, nulls } => {
                    for r in 0..lb.len {
                        if nulls[r] {
                            continue;
                        }
                        if let Some(ms) = int_table.get(&vals[r]) {
                            for &br in ms {
                                lidx.push(r as u32);
                                ridx.push(br);
                            }
                        }
                    }
                }
                other => {
                    for r in 0..lb.len {
                        if let Some(k) = other.get(r).as_int() {
                            if let Some(ms) = int_table.get(&k) {
                                for &br in ms {
                                    lidx.push(r as u32);
                                    ridx.push(br);
                                }
                            }
                        }
                    }
                }
            }
        } else {
            for r in 0..lb.len {
                let key: Vec<Value> = left_keys.iter().map(|&k| lb.cols[k].get(r)).collect();
                if key.iter().any(|v| v.is_null()) {
                    continue;
                }
                if let Some(ms) = gen_table.get(&key) {
                    for &br in ms {
                        lidx.push(r as u32);
                        ridx.push(br);
                    }
                }
            }
        }
        if lidx.is_empty() {
            continue;
        }
        let mut cols: Vec<ColumnData> = lb.cols.iter().map(|c| c.gather(&lidx)).collect();
        cols.extend(build.cols.iter().map(|c| c.gather(&ridx)));
        out.push(Batch {
            cols,
            len: lidx.len(),
        });
    }
    Ok(out)
}

enum Acc {
    CountStar(u64),
    Count(u64),
    CountDistinct(imci_common::FxHashSet<Value>),
    Sum {
        sum: f64,
        any: bool,
        int: bool,
        isum: i64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(call: &AggCall) -> Acc {
        match call.func {
            AggFunc::CountStar => Acc::CountStar(0),
            AggFunc::Count if call.distinct => {
                Acc::CountDistinct(imci_common::FxHashSet::default())
            }
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                sum: 0.0,
                any: false,
                int: true,
                isum: 0,
            },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count(n) => {
                if matches!(v, Some(x) if !x.is_null()) {
                    *n += 1;
                }
            }
            Acc::CountDistinct(set) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        set.insert(x.clone());
                    }
                }
            }
            Acc::Sum {
                sum,
                any,
                int,
                isum,
            } => {
                if let Some(x) = v {
                    match x {
                        Value::Int(i) => {
                            *isum += i;
                            *sum += *i as f64;
                            *any = true;
                        }
                        Value::Double(d) => {
                            *sum += d;
                            *int = false;
                            *any = true;
                        }
                        _ => {}
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(f) = v.and_then(|x| x.as_f64()) {
                    *sum += f;
                    *n += 1;
                }
            }
            Acc::Min(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x < cur) {
                        *m = Some(x.clone());
                    }
                }
            }
            Acc::Max(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x > cur) {
                        *m = Some(x.clone());
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::CountStar(n) | Acc::Count(n) => Value::Int(n as i64),
            Acc::CountDistinct(set) => Value::Int(set.len() as i64),
            Acc::Sum {
                sum,
                any,
                int,
                isum,
            } => {
                if !any {
                    Value::Null
                } else if int {
                    Value::Int(isum)
                } else {
                    Value::Double(sum)
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / n as f64)
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.unwrap_or(Value::Null),
        }
    }
}

fn hash_agg(
    ctx: &ExecContext,
    input: &PhysicalPlan,
    group_by: &[Expr],
    aggs: &[AggCall],
) -> Result<Batch> {
    let mut table: FxHashMap<Vec<Value>, Vec<Acc>> = FxHashMap::default();
    let mut saw_any = false;
    for b in exec_stream(input, ctx)? {
        saw_any = true;
        let key_cols = group_by
            .iter()
            .map(|e| e.eval(&b))
            .collect::<Result<Vec<ColumnData>>>()?;
        let arg_cols = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.eval(&b)).transpose())
            .collect::<Result<Vec<Option<ColumnData>>>>()?;
        for r in 0..b.len {
            let key: Vec<Value> = key_cols.iter().map(|c| c.get(r)).collect();
            let accs = table
                .entry(key)
                .or_insert_with(|| aggs.iter().map(Acc::new).collect());
            for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
                match arg {
                    Some(col) => acc.update(Some(&col.get(r))),
                    None => acc.update(None),
                }
            }
        }
    }
    // Global aggregate over an empty input still yields one row.
    if table.is_empty() && group_by.is_empty() && saw_any {
        table.insert(Vec::new(), aggs.iter().map(Acc::new).collect());
    }
    if table.is_empty() && group_by.is_empty() {
        table.insert(Vec::new(), aggs.iter().map(Acc::new).collect());
    }
    // Output: group keys ++ agg results, deterministic (sorted by key).
    let mut rows: Vec<(Vec<Value>, Vec<Acc>)> = table.into_iter().collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let width = group_by.len() + aggs.len();
    let mut out: Option<Batch> = None;
    for (key, accs) in rows {
        let mut vals = key;
        vals.extend(accs.into_iter().map(Acc::finish));
        let out = out.get_or_insert_with(|| {
            let types: Vec<imci_common::DataType> = vals
                .iter()
                .map(|v| v.data_type().unwrap_or(imci_common::DataType::Int))
                .collect();
            Batch::empty(&types)
        });
        out.push_values(&vals)?;
    }
    Ok(out.unwrap_or_else(|| Batch::empty(&vec![imci_common::DataType::Int; width])))
}

fn sort_batch(b: Batch, keys: &[(usize, bool)], limit: Option<usize>) -> Result<Batch> {
    let mut idx: Vec<usize> = (0..b.len).collect();
    // Total order: sort keys, then original position — ties resolve like
    // a stable sort, and the top-K path selects the same rows the full
    // sort would.
    let cmp = |x: &usize, y: &usize| {
        for &(k, desc) in keys {
            let (vx, vy) = (b.cols[k].get(*x), b.cols[k].get(*y));
            let ord = vx.cmp(&vy);
            if ord != std::cmp::Ordering::Equal {
                return if desc { ord.reverse() } else { ord };
            }
        }
        x.cmp(y)
    };
    match limit {
        Some(0) => idx.clear(),
        // Bounded top-K: O(n) partition around the k-th row, then sort
        // only the prefix — no full sort of rows a LIMIT discards.
        Some(k) if k < idx.len() => {
            idx.select_nth_unstable_by(k - 1, cmp);
            idx.truncate(k);
            idx.sort_unstable_by(cmp);
        }
        _ => idx.sort_unstable_by(cmp),
    }
    b.gather(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Schema, Vid};
    use imci_core::ColumnIndex;

    fn schema() -> Schema {
        Schema::new(
            TableId(1),
            "sales",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("region", DataType::Str),
                ColumnDef::new("qty", DataType::Int),
                ColumnDef::new("price", DataType::Double),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1, 2, 3],
                },
            ],
        )
        .unwrap()
    }

    fn ctx_with_data(n: i64, group_cap: usize) -> (ExecContext, Arc<ColumnIndex>) {
        let idx = ColumnIndex::for_schema(&schema(), group_cap);
        let regions = ["east", "west", "north", "south"];
        for pk in 0..n {
            idx.insert(
                Vid(1),
                &[
                    Value::Int(pk),
                    Value::Str(regions[(pk % 4) as usize].into()),
                    Value::Int(pk % 10),
                    Value::Double(pk as f64 * 1.5),
                ],
            )
            .unwrap();
        }
        idx.advance_visible(Vid(1));
        let mut snaps = FxHashMap::default();
        snaps.insert(TableId(1), Arc::new(idx.snapshot()));
        let mut ctx = ExecContext::new(snaps);
        ctx.parallelism = 2;
        (ctx, idx)
    }

    fn scan_all() -> PhysicalPlan {
        PhysicalPlan::ColumnScan {
            table: TableId(1),
            cols: vec![0, 1, 2, 3],
            prune: vec![],
            filter: None,
        }
    }

    #[test]
    fn full_scan_returns_all_rows() {
        let (ctx, _) = ctx_with_data(100, 16);
        let b = execute(&scan_all(), &ctx).unwrap();
        assert_eq!(b.len, 100);
    }

    #[test]
    fn filter_and_project() {
        let (ctx, _) = ctx_with_data(100, 16);
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan_all()),
                pred: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10i64)),
            }),
            exprs: vec![
                Expr::col(0),
                Expr::Arith(
                    crate::expr::ArithOp::Mul,
                    Box::new(Expr::col(3)),
                    Box::new(Expr::lit(2.0)),
                ),
            ],
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 10);
        assert_eq!(b.width(), 2);
        assert_eq!(b.cols[1].get(2), Value::Double(6.0)); // 2*1.5*2
    }

    #[test]
    fn pack_pruning_skips_groups() {
        let (mut ctx, _) = ctx_with_data(160, 16); // pk 0..160, 10 groups
        let plan = PhysicalPlan::ColumnScan {
            table: TableId(1),
            cols: vec![0],
            prune: vec![PruneRange {
                col: 0,
                lo: Some(Value::Int(150)),
                hi: None,
            }],
            filter: Some(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(150i64))),
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 10);
        // With pruning disabled the result must be identical.
        ctx.prune_enabled = false;
        let b2 = execute(&plan, &ctx).unwrap();
        assert_eq!(b2.len, 10);
    }

    #[test]
    fn group_agg_sums_per_region() {
        let (ctx, _) = ctx_with_data(100, 16);
        let plan = PhysicalPlan::HashAgg {
            input: Box::new(scan_all()),
            group_by: vec![Expr::col(1)],
            aggs: vec![
                AggCall {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(2)),
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Avg,
                    arg: Some(Expr::col(3)),
                    distinct: false,
                },
            ],
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 4, "four regions");
        // Keys sorted: east, north, south, west. 25 rows each.
        assert_eq!(b.cols[1].get(0), Value::Int(25));
    }

    #[test]
    fn global_agg_without_groups() {
        let (ctx, _) = ctx_with_data(50, 16);
        let plan = PhysicalPlan::HashAgg {
            input: Box::new(scan_all()),
            group_by: vec![],
            aggs: vec![
                AggCall {
                    func: AggFunc::Min,
                    arg: Some(Expr::col(0)),
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Max,
                    arg: Some(Expr::col(0)),
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Count,
                    arg: Some(Expr::col(0)),
                    distinct: true,
                },
            ],
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 1);
        assert_eq!(
            b.row(0),
            vec![Value::Int(0), Value::Int(49), Value::Int(50)]
        );
    }

    #[test]
    fn sort_desc_with_limit() {
        let (ctx, _) = ctx_with_data(30, 8);
        let plan = PhysicalPlan::Sort {
            input: Box::new(scan_all()),
            keys: vec![(0, true)],
            limit: Some(3),
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 3);
        assert_eq!(b.cols[0].get(0), Value::Int(29));
        assert_eq!(b.cols[0].get(2), Value::Int(27));
    }

    #[test]
    fn hash_join_inner() {
        // Self-join: sales s JOIN sales t ON s.qty = t.id (qty in 0..10).
        let (ctx, _) = ctx_with_data(20, 8);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan_all()),
            right: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan_all()),
                pred: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5i64)),
            }),
            left_keys: vec![2],
            right_keys: vec![0],
        };
        let b = execute(&plan, &ctx).unwrap();
        // qty = pk % 10; join matches rows whose qty ∈ {0..4}: pks with
        // pk%10 in 0..5 → 10 of 20 rows, each matching exactly 1.
        assert_eq!(b.len, 10);
        assert_eq!(b.width(), 8);
        for r in 0..b.len {
            assert_eq!(b.cols[2].get(r), b.cols[4].get(r), "join key equality");
        }
    }

    #[test]
    fn limit_without_sort() {
        let (ctx, _) = ctx_with_data(100, 16);
        let plan = PhysicalPlan::Limit {
            input: Box::new(scan_all()),
            n: 7,
        };
        assert_eq!(execute(&plan, &ctx).unwrap().len, 7);
    }

    #[test]
    fn late_materialization_matches_early_baseline() {
        let (mut ctx, idx) = ctx_with_data(100, 16);
        // Deletes give partial visibility inside sealed groups.
        idx.delete(Vid(2), 13).unwrap();
        idx.delete(Vid(2), 57).unwrap();
        idx.advance_visible(Vid(2));
        let mut snaps = FxHashMap::default();
        snaps.insert(TableId(1), Arc::new(idx.snapshot()));
        ctx.snapshots = snaps;
        // One compressed-kernel filter, one fallback (arith) filter.
        let preds = [
            Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit(3i64)).and(Expr::cmp(
                CmpOp::Eq,
                Expr::col(1),
                Expr::Lit(Value::Str("east".into())),
            )),
            Expr::cmp(
                CmpOp::Lt,
                Expr::Arith(
                    crate::expr::ArithOp::Add,
                    Box::new(Expr::col(0)),
                    Box::new(Expr::lit(1i64)),
                ),
                Expr::lit(20i64),
            ),
        ];
        for pred in preds {
            let plan = PhysicalPlan::ColumnScan {
                table: TableId(1),
                cols: vec![0, 1, 2, 3],
                prune: vec![],
                filter: Some(pred),
            };
            ctx.late_materialization = true;
            let on = execute(&plan, &ctx).unwrap();
            ctx.late_materialization = false;
            let off = execute(&plan, &ctx).unwrap();
            assert_eq!(on.len, off.len);
            for r in 0..on.len {
                assert_eq!(on.row(r), off.row(r), "row {r}");
            }
        }
    }

    #[test]
    fn top_k_sort_matches_full_sort_under_ties() {
        let (ctx, _) = ctx_with_data(50, 8);
        // qty = pk % 10 is full of ties; the bounded top-K path must
        // pick the same rows (and order) the full stable sort would.
        let sorted = |limit| {
            let plan = PhysicalPlan::Sort {
                input: Box::new(scan_all()),
                keys: vec![(2, false)],
                limit,
            };
            execute(&plan, &ctx).unwrap()
        };
        let full = sorted(None);
        let topk = sorted(Some(12));
        assert_eq!(topk.len, 12);
        for r in 0..12 {
            assert_eq!(topk.row(r), full.row(r), "row {r}");
        }
        assert_eq!(sorted(Some(0)).len, 0);
        assert_eq!(sorted(Some(500)).len, 50, "limit past the end");
    }

    #[test]
    fn mvcc_snapshot_view_in_scan() {
        let (_, idx) = ctx_with_data(10, 8);
        // Delete under a newer vid; an old snapshot still scans 10 rows.
        let old_snap = Arc::new(idx.snapshot());
        idx.delete(Vid(2), 0).unwrap();
        idx.advance_visible(Vid(2));
        let new_snap = Arc::new(idx.snapshot());
        let mk_ctx = |s: Arc<Snapshot>| {
            let mut m = FxHashMap::default();
            m.insert(TableId(1), s);
            ExecContext::new(m)
        };
        let plan = scan_all();
        assert_eq!(execute(&plan, &mk_ctx(old_snap)).unwrap().len, 10);
        assert_eq!(execute(&plan, &mk_ctx(new_snap)).unwrap().len, 9);
    }
}
