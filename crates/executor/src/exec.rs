//! Batch-mode execution of physical plans (paper §6.3), morsel-driven
//! (§6.2).
//!
//! The plan tree is decomposed into pipelines at blocking operators
//! (join build, aggregation, sort). Scans split into per-rowgroup
//! *morsels* — each pinning its visibility [`SelVec`] at dispatch time
//! and running the compressed-domain kernels + late materialization
//! independently on the shared [`crate::morsel::WorkerPool`] — and the
//! blocking operators merge per-morsel partial results: partial hash
//! aggregation with a final combine, a hash-partitioned join build with
//! parallel probe, and per-morsel top-K with a final merge. Every
//! parallel path produces bit-identical output to the serial path
//! (`ExecContext::parallelism == 1`), which stays as the ablation
//! baseline; the `parallel_equiv` proptest oracle enforces this.
//! Pack min/max metadata prunes groups before any data is touched.

use crate::batch::Batch;
use crate::expr::Expr;
use crate::kernels::{self, ColView};
use crate::morsel;
use crate::plan::{AggCall, AggFunc, PhysicalPlan, PruneRange};
use imci_common::{Error, FxHashMap, Result, TableId, Value};
use imci_core::{ColumnData, ColumnRead, PinnedGroup, SelVec, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution context: pinned snapshots + tuning.
pub struct ExecContext {
    /// One snapshot per table touched by the query (consistent view).
    pub snapshots: FxHashMap<TableId, Arc<Snapshot>>,
    /// Per-query cap on morsels in flight. The worker pool itself is
    /// process-global and machine-sized; this knob bounds how much of
    /// it one query may occupy. `1` disables parallel dispatch and is
    /// the serial ablation baseline.
    pub parallelism: usize,
    /// Min/max pack pruning (ablation switch).
    pub prune_enabled: bool,
    /// Late materialization (ablation switch): evaluate scan filters on
    /// the compressed packs and gather payload columns only for
    /// surviving rows. Off = decode-then-filter baseline.
    pub late_materialization: bool,
}

impl ExecContext {
    /// Context over the given snapshots with default tuning.
    pub fn new(snapshots: FxHashMap<TableId, Arc<Snapshot>>) -> ExecContext {
        ExecContext {
            snapshots,
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            prune_enabled: true,
            late_materialization: true,
        }
    }

    fn snapshot(&self, table: TableId) -> Result<&Arc<Snapshot>> {
        self.snapshots
            .get(&table)
            .ok_or_else(|| Error::Execution(format!("no snapshot for table {table}")))
    }

    /// Morsel concurrency for a stage with `units` independent units.
    fn par(&self, units: usize) -> usize {
        self.parallelism.clamp(1, units.max(1))
    }
}

/// Per-operator runtime counters reported by `EXPLAIN ANALYZE`.
/// Operator ids are pre-order positions in the plan tree — the same
/// order [`PhysicalPlan::explain`] emits lines, so `rows[i]` belongs to
/// the operator on line `i`.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Rows each operator produced.
    pub rows: Vec<u64>,
    /// Morsels per operator: scans count their pinned row groups (the
    /// units the scan decomposes into); blocking operators count the
    /// partial-work units they dispatched to the pool.
    pub morsels: Vec<u64>,
    /// Wall-clock of the whole execution.
    pub wall: Duration,
}

impl ExecStats {
    /// Total morsels across all operators.
    pub fn total_morsels(&self) -> u64 {
        self.morsels.iter().sum()
    }
}

/// Mutable counters threaded through execution. Atomics so the cell
/// can be shared by reference through the recursion without borrow
/// gymnastics; only the orchestrator thread updates it.
struct StatsCell {
    rows: Vec<AtomicU64>,
    morsels: Vec<AtomicU64>,
}

impl StatsCell {
    fn new(ops: usize) -> StatsCell {
        StatsCell {
            rows: (0..ops).map(|_| AtomicU64::new(0)).collect(),
            morsels: (0..ops).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn add_rows(&self, op: usize, n: u64) {
        if let Some(c) = self.rows.get(op) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn add_morsels(&self, op: usize, n: u64) {
        if let Some(c) = self.morsels.get(op) {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn finish(self, wall: Duration) -> ExecStats {
        ExecStats {
            rows: self.rows.into_iter().map(|a| a.into_inner()).collect(),
            morsels: self.morsels.into_iter().map(|a| a.into_inner()).collect(),
            wall,
        }
    }
}

/// Execute a plan to a fully-materialized result batch.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Batch> {
    let batches = exec_stream(plan, ctx)?;
    Batch::concat(&batches)
}

/// Execute returning per-pipeline batches (avoids the final concat for
/// consumers that stream).
pub fn exec_stream(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Vec<Batch>> {
    exec_node(plan, ctx, 0, None)
}

/// Execute to a materialized batch, collecting the per-operator
/// counters `EXPLAIN ANALYZE` reports.
pub fn execute_with_stats(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<(Batch, ExecStats)> {
    let t0 = Instant::now();
    let cell = StatsCell::new(plan.op_count());
    let out = Batch::concat(&exec_node(plan, ctx, 0, Some(&cell))?)?;
    Ok((out, cell.finish(t0.elapsed())))
}

/// One operator. `op` is the node's pre-order id (children of a node at
/// `op` start at `op + 1`; a join's build side starts after the whole
/// probe subtree).
fn exec_node(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    op: usize,
    stats: Option<&StatsCell>,
) -> Result<Vec<Batch>> {
    let out = match plan {
        PhysicalPlan::ColumnScan {
            table,
            cols,
            prune,
            filter,
        } => scan(ctx, *table, cols, prune, filter.as_ref(), op, stats)?,
        PhysicalPlan::Filter { input, pred } => {
            let mut out = Vec::new();
            for b in exec_node(input, ctx, op + 1, stats)? {
                // Selection-vector path: typed kernels (dictionary-aware
                // for strings) straight to one gather per column.
                let views = kernels::batch_views(&b);
                let f = if ctx.late_materialization && kernels::compressible(pred, &views) {
                    let sel = kernels::eval_sel(pred, &views, SelVec::identity(b.len))?;
                    b.take(&sel)
                } else {
                    let mask = pred.eval_mask(&b)?;
                    b.filter(&mask)?
                };
                if f.len > 0 {
                    out.push(f);
                }
            }
            out
        }
        PhysicalPlan::Project { input, exprs } => {
            let mut out = Vec::new();
            for b in exec_node(input, ctx, op + 1, stats)? {
                let cols = exprs
                    .iter()
                    .map(|e| e.eval(&b))
                    .collect::<Result<Vec<ColumnData>>>()?;
                out.push(Batch { cols, len: b.len });
            }
            out
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => hash_join(ctx, left, right, left_keys, right_keys, op, stats)?,
        PhysicalPlan::HashAgg {
            input,
            group_by,
            aggs,
        } => vec![hash_agg(ctx, input, group_by, aggs, op, stats)?],
        PhysicalPlan::Sort { input, keys, limit } => {
            vec![sort(ctx, input, keys, *limit, op, stats)?]
        }
        PhysicalPlan::Limit { input, n } => {
            let mut out = Vec::new();
            let mut remaining = *n;
            for b in exec_node(input, ctx, op + 1, stats)? {
                if remaining == 0 {
                    break;
                }
                if b.len <= remaining {
                    remaining -= b.len;
                    out.push(b);
                } else {
                    let mut b = b;
                    b.truncate(remaining);
                    out.push(b);
                    remaining = 0;
                }
            }
            out
        }
    };
    if let Some(s) = stats {
        s.add_rows(op, out.iter().map(|b| b.len as u64).sum());
    }
    Ok(out)
}

/// Everything one scan morsel needs besides its [`PinnedGroup`] —
/// shared across morsels via one `Arc`, so a morsel job is `'static`
/// without copying the filter per group.
struct ScanParams {
    cols: Vec<usize>,
    filter: Option<Expr>,
    late_materialization: bool,
}

fn scan(
    ctx: &ExecContext,
    table: TableId,
    cols: &[usize],
    prune: &[PruneRange],
    filter: Option<&Expr>,
    op: usize,
    stats: Option<&StatsCell>,
) -> Result<Vec<Batch>> {
    let snap = ctx.snapshot(table)?;
    // Morsel creation, on the orchestrator: pack pruning first
    // (metadata only — skip the whole group if any constrained column's
    // min/max range proves no row can match; sealed groups only, the
    // partial group has no sealed metadata), then the snapshot pins
    // each survivor's visibility SelVec. Workers receive finished
    // morsels and never touch MVCC state.
    let mut pinned: Vec<PinnedGroup> = Vec::new();
    'groups: for group in snap.groups() {
        if ctx.prune_enabled && group.is_sealed() {
            for pr in prune {
                if let Some(pack) = group.column_pack(pr.col) {
                    if !pack.meta.may_contain_range(pr.lo.as_ref(), pr.hi.as_ref()) {
                        continue 'groups;
                    }
                }
            }
        }
        if let Some(p) = snap.pin_group(&group) {
            pinned.push(p);
        }
    }
    if let Some(s) = stats {
        s.add_morsels(op, pinned.len() as u64);
    }
    if pinned.is_empty() {
        return Ok(Vec::new());
    }
    let params = ScanParams {
        cols: cols.to_vec(),
        filter: filter.cloned(),
        late_materialization: ctx.late_materialization,
    };
    let par = ctx.par(pinned.len());
    if par == 1 {
        let mut out = Vec::new();
        for p in &pinned {
            if let Some(b) = scan_group(p, &params)? {
                if b.len > 0 {
                    out.push(b);
                }
            }
        }
        return Ok(out);
    }
    let n = pinned.len();
    let shared = Arc::new((pinned, params));
    collect_morsels(morsel::run_morsels(par, n, move |i| {
        scan_group(&shared.0[i], &shared.1)
    }))
}

/// Flatten ordered morsel results: a missing slot (worker panic)
/// becomes an execution error, empty batches are dropped, order is the
/// morsel order.
fn collect_morsels(results: Vec<Option<Result<Option<Batch>>>>) -> Result<Vec<Batch>> {
    let mut out = Vec::new();
    for r in results {
        match r {
            None => return Err(Error::Execution("morsel worker panicked".into())),
            Some(Err(e)) => return Err(e),
            Some(Ok(Some(b))) if b.len > 0 => out.push(b),
            Some(Ok(_)) => {}
        }
    }
    Ok(out)
}

fn scan_group(p: &PinnedGroup, params: &ScanParams) -> Result<Option<Batch>> {
    let group = &p.group;
    let reads: Vec<ColumnRead> = params.cols.iter().map(|&c| group.read_column(c)).collect();
    if !params.late_materialization {
        return scan_group_early_mat(&reads, &p.visible, params.filter.as_ref());
    }
    // Late materialization: refine the pinned visibility selection with
    // the predicate kernels over the *compressed* packs, then gather
    // every requested column exactly once, at the surviving offsets.
    let sel = match &params.filter {
        None => p.visible.clone(),
        Some(f) => {
            let views: Vec<ColView> = reads.iter().map(ColView::of).collect();
            if kernels::compressible(f, &views) {
                kernels::eval_sel(f, &views, p.visible.clone())?
            } else {
                // Fallback for non-kernel shapes (arithmetic, col/col
                // compares): materialize only the filter's columns at
                // the visible offsets, mask, and still late-gather the
                // full payload.
                let mut refs = Vec::new();
                f.referenced_cols(&mut refs);
                refs.sort_unstable();
                refs.dedup();
                let sub = Batch {
                    cols: refs.iter().map(|&j| reads[j].gather(&p.visible)).collect(),
                    len: p.visible.len(),
                };
                let remapped = f.remap(&|j| refs.binary_search(&j).unwrap_or(0));
                let mask = remapped.eval_mask(&sub)?;
                let kept: Vec<u32> = p
                    .visible
                    .iter()
                    .zip(mask)
                    .filter(|&(_, m)| m)
                    .map(|(i, _)| i)
                    .collect();
                SelVec::from_sorted(kept)
            }
        }
    };
    if sel.is_empty() {
        return Ok(None);
    }
    let out_cols: Vec<ColumnData> = reads.iter().map(|r| r.gather(&sel)).collect();
    Ok(Some(Batch {
        cols: out_cols,
        len: sel.len(),
    }))
}

/// Ablation baseline (the pre-selection-vector pipeline): decode every
/// requested column at all visible offsets, evaluate the filter as a
/// bool mask over the materialized batch, then gather a second time.
fn scan_group_early_mat(
    reads: &[ColumnRead],
    visible: &SelVec,
    filter: Option<&Expr>,
) -> Result<Option<Batch>> {
    let out_cols: Vec<ColumnData> = reads.iter().map(|r| r.gather(visible)).collect();
    let batch = Batch {
        cols: out_cols,
        len: visible.len(),
    };
    match filter {
        Some(f) => {
            let mask = f.eval_mask(&batch)?;
            Ok(Some(batch.filter(&mask)?))
        }
        None => Ok(Some(batch)),
    }
}

/// Partition selector for integer join keys. Any stable function of the
/// key works for correctness: partitioning only routes a key to the one
/// map holding it, and per-key match lists stay in build-row order in
/// every partition, so partitioned output equals the single-map
/// output exactly.
fn int_part(k: i64, parts: usize) -> usize {
    (((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % parts
}

/// Partition selector for generic (multi-column / non-int) join keys.
fn gen_part(key: &[Value], parts: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() >> 32) as usize % parts
}

/// The build side of a hash join: the materialized build batch plus
/// hash-partitioned key maps (one partition when built serially).
/// Values are build-row indices in ascending build order — the
/// output-ordering contract of [`PhysicalPlan::HashJoin`] depends on
/// this.
enum JoinKeys {
    /// Single integer key fast path (all PK/FK joins).
    Int(Vec<FxHashMap<i64, Vec<u32>>>),
    /// Generic multi-column keys.
    Gen(Vec<FxHashMap<Vec<Value>, Vec<u32>>>),
}

struct JoinTable {
    build: Arc<Batch>,
    keys: JoinKeys,
}

fn build_join_table(build: Batch, right_keys: &[usize], parts: usize) -> Result<JoinTable> {
    let int_key = right_keys.len() == 1
        && matches!(build.cols.get(right_keys[0]), Some(ColumnData::Int { .. }));
    let build = Arc::new(build);
    if int_key {
        let rk = right_keys[0];
        let build_part = {
            let b = build.clone();
            move |w: usize| {
                let mut m: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
                if let ColumnData::Int { vals, nulls } = &b.cols[rk] {
                    for r in 0..b.len {
                        if !nulls[r] && int_part(vals[r], parts) == w {
                            m.entry(vals[r]).or_default().push(r as u32);
                        }
                    }
                }
                m
            }
        };
        let maps = if parts == 1 {
            vec![Some(build_part(0))]
        } else {
            morsel::run_morsels(parts, parts, build_part)
        };
        let maps = maps
            .into_iter()
            .map(|m| m.ok_or_else(|| Error::Execution("morsel worker panicked".into())))
            .collect::<Result<Vec<_>>>()?;
        return Ok(JoinTable {
            build,
            keys: JoinKeys::Int(maps),
        });
    }
    let rks = Arc::new(right_keys.to_vec());
    let build_part = {
        let b = build.clone();
        move |w: usize| {
            let mut m: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
            for r in 0..b.len {
                let key: Vec<Value> = rks.iter().map(|&k| b.cols[k].get(r)).collect();
                if key.iter().any(|v| v.is_null()) {
                    continue; // SQL: NULL keys never join
                }
                if gen_part(&key, parts) == w {
                    m.entry(key).or_default().push(r as u32);
                }
            }
            m
        }
    };
    let maps = if parts == 1 {
        vec![Some(build_part(0))]
    } else {
        morsel::run_morsels(parts, parts, build_part)
    };
    let maps = maps
        .into_iter()
        .map(|m| m.ok_or_else(|| Error::Execution("morsel worker panicked".into())))
        .collect::<Result<Vec<_>>>()?;
    Ok(JoinTable {
        build,
        keys: JoinKeys::Gen(maps),
    })
}

/// Probe one batch against the build table. Emits (probe, build) index
/// pairs in probe-row order — with per-key build lists in build-row
/// order, the joined output for a given probe batch is fully
/// deterministic and independent of partition count.
fn probe_batch(lb: &Batch, left_keys: &[usize], jt: &JoinTable) -> Option<Batch> {
    let mut lidx: Vec<u32> = Vec::new();
    let mut ridx: Vec<u32> = Vec::new();
    match &jt.keys {
        JoinKeys::Int(maps) => {
            let parts = maps.len();
            let mut probe_one = |r: usize, k: i64| {
                if let Some(ms) = maps[int_part(k, parts)].get(&k) {
                    for &br in ms {
                        lidx.push(r as u32);
                        ridx.push(br);
                    }
                }
            };
            // Left key may be Int storage or need generic access.
            match &lb.cols[left_keys[0]] {
                ColumnData::Int { vals, nulls } => {
                    for r in 0..lb.len {
                        if !nulls[r] {
                            probe_one(r, vals[r]);
                        }
                    }
                }
                other => {
                    for r in 0..lb.len {
                        if let Some(k) = other.get(r).as_int() {
                            probe_one(r, k);
                        }
                    }
                }
            }
        }
        JoinKeys::Gen(maps) => {
            let parts = maps.len();
            for r in 0..lb.len {
                let key: Vec<Value> = left_keys.iter().map(|&k| lb.cols[k].get(r)).collect();
                if key.iter().any(|v| v.is_null()) {
                    continue;
                }
                if let Some(ms) = maps[gen_part(&key, parts)].get(&key) {
                    for &br in ms {
                        lidx.push(r as u32);
                        ridx.push(br);
                    }
                }
            }
        }
    }
    if lidx.is_empty() {
        return None;
    }
    let mut cols: Vec<ColumnData> = lb.cols.iter().map(|c| c.gather(&lidx)).collect();
    cols.extend(jt.build.cols.iter().map(|c| c.gather(&ridx)));
    Some(Batch {
        cols,
        len: lidx.len(),
    })
}

fn hash_join(
    ctx: &ExecContext,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    left_keys: &[usize],
    right_keys: &[usize],
    op: usize,
    stats: Option<&StatsCell>,
) -> Result<Vec<Batch>> {
    // Pre-order ids: probe subtree first, then the build subtree.
    let right_op = op + 1 + left.op_count();
    // Build phase (blocking): materialize the right side, then build
    // the key maps — hash-partitioned across the pool when the context
    // allows (capped: each partition builder scans the key column once,
    // so very wide fan-out buys nothing).
    let build = Batch::concat(&exec_node(right, ctx, right_op, stats)?)?;
    let parts = ctx.parallelism.clamp(1, 8);
    if parts > 1 {
        if let Some(s) = stats {
            s.add_morsels(op, parts as u64);
        }
    }
    let jt = Arc::new(build_join_table(build, right_keys, parts)?);
    // Probe phase: each probe batch is one morsel; results are gathered
    // in batch order, preserving the serial output order exactly.
    let lbs = exec_node(left, ctx, op + 1, stats)?;
    let par = ctx.par(lbs.len());
    if par == 1 {
        let mut out = Vec::new();
        for lb in &lbs {
            if let Some(b) = probe_batch(lb, left_keys, &jt) {
                out.push(b);
            }
        }
        return Ok(out);
    }
    if let Some(s) = stats {
        s.add_morsels(op, lbs.len() as u64);
    }
    let n = lbs.len();
    let shared = Arc::new((lbs, left_keys.to_vec(), jt));
    let results = morsel::run_morsels(par, n, move |i| {
        probe_batch(&shared.0[i], &shared.1, &shared.2)
    });
    let mut out = Vec::new();
    for r in results {
        match r {
            None => return Err(Error::Execution("morsel worker panicked".into())),
            Some(Some(b)) => out.push(b),
            Some(None) => {}
        }
    }
    Ok(out)
}

enum Acc {
    CountStar(u64),
    Count(u64),
    CountDistinct(imci_common::FxHashSet<Value>),
    Sum {
        sum: f64,
        any: bool,
        int: bool,
        isum: i64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(call: &AggCall) -> Acc {
        match call.func {
            AggFunc::CountStar => Acc::CountStar(0),
            AggFunc::Count if call.distinct => {
                Acc::CountDistinct(imci_common::FxHashSet::default())
            }
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                sum: 0.0,
                any: false,
                int: true,
                isum: 0,
            },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count(n) => {
                if matches!(v, Some(x) if !x.is_null()) {
                    *n += 1;
                }
            }
            Acc::CountDistinct(set) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        set.insert(x.clone());
                    }
                }
            }
            Acc::Sum {
                sum,
                any,
                int,
                isum,
            } => {
                if let Some(x) = v {
                    match x {
                        Value::Int(i) => {
                            *isum += i;
                            *sum += *i as f64;
                            *any = true;
                        }
                        Value::Double(d) => {
                            *sum += d;
                            *int = false;
                            *any = true;
                        }
                        _ => {}
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(f) = v.and_then(|x| x.as_f64()) {
                    *sum += f;
                    *n += 1;
                }
            }
            Acc::Min(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x < cur) {
                        *m = Some(x.clone());
                    }
                }
            }
            Acc::Max(m) => {
                if let Some(x) = v {
                    if !x.is_null() && m.as_ref().is_none_or(|cur| x > cur) {
                        *m = Some(x.clone());
                    }
                }
            }
        }
    }

    /// Fold another partial accumulator (same [`AggCall`], different
    /// morsel) into this one — the combine step of partial aggregation.
    fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::CountStar(a), Acc::CountStar(b)) | (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::CountDistinct(a), Acc::CountDistinct(b)) => a.extend(b),
            (
                Acc::Sum {
                    sum,
                    any,
                    int,
                    isum,
                },
                Acc::Sum {
                    sum: s,
                    any: a,
                    int: i,
                    isum: is,
                },
            ) => {
                *sum += s;
                *any |= a;
                *int &= i;
                *isum += is;
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: s, n: m }) => {
                *sum += s;
                *n += m;
            }
            (Acc::Min(a), Acc::Min(Some(v))) if a.as_ref().is_none_or(|cur| v < *cur) => {
                *a = Some(v);
            }
            (Acc::Max(a), Acc::Max(Some(v))) if a.as_ref().is_none_or(|cur| v > *cur) => {
                *a = Some(v);
            }
            // Partials for one group are always built from the same
            // AggCall list, so variants line up; nothing to merge
            // otherwise.
            _ => {}
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::CountStar(n) | Acc::Count(n) => Value::Int(n as i64),
            Acc::CountDistinct(set) => Value::Int(set.len() as i64),
            Acc::Sum {
                sum,
                any,
                int,
                isum,
            } => {
                if !any {
                    Value::Null
                } else if int {
                    Value::Int(isum)
                } else {
                    Value::Double(sum)
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / n as f64)
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.unwrap_or(Value::Null),
        }
    }
}

type AggTable = FxHashMap<Vec<Value>, Vec<Acc>>;

/// Accumulate one batch into an aggregation table.
fn agg_into(table: &mut AggTable, b: &Batch, group_by: &[Expr], aggs: &[AggCall]) -> Result<()> {
    let key_cols = group_by
        .iter()
        .map(|e| e.eval(b))
        .collect::<Result<Vec<ColumnData>>>()?;
    let arg_cols = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.eval(b)).transpose())
        .collect::<Result<Vec<Option<ColumnData>>>>()?;
    for r in 0..b.len {
        let key: Vec<Value> = key_cols.iter().map(|c| c.get(r)).collect();
        let accs = table
            .entry(key)
            .or_insert_with(|| aggs.iter().map(Acc::new).collect());
        for (acc, arg) in accs.iter_mut().zip(&arg_cols) {
            match arg {
                Some(col) => acc.update(Some(&col.get(r))),
                None => acc.update(None),
            }
        }
    }
    Ok(())
}

/// Fold a partial table into the global one (combine step).
fn merge_agg(into: &mut AggTable, from: AggTable) {
    for (key, accs) in from {
        if let Some(cur) = into.get_mut(&key) {
            for (a, b) in cur.iter_mut().zip(accs) {
                a.merge(b);
            }
        } else {
            into.insert(key, accs);
        }
    }
}

fn hash_agg(
    ctx: &ExecContext,
    input: &PhysicalPlan,
    group_by: &[Expr],
    aggs: &[AggCall],
    op: usize,
    stats: Option<&StatsCell>,
) -> Result<Batch> {
    let batches = exec_node(input, ctx, op + 1, stats)?;
    let par = ctx.par(batches.len());
    let mut table: AggTable = FxHashMap::default();
    if par == 1 {
        for b in &batches {
            agg_into(&mut table, b, group_by, aggs)?;
        }
    } else {
        // Partial aggregation: one partial table per input batch built
        // on the pool, combined here in batch order. The deterministic
        // combine order keeps repeated runs bit-identical even for
        // float sums.
        if let Some(s) = stats {
            s.add_morsels(op, batches.len() as u64);
        }
        let n = batches.len();
        let shared = Arc::new((batches, group_by.to_vec(), aggs.to_vec()));
        let partials = morsel::run_morsels(par, n, move |i| {
            let mut t = AggTable::default();
            agg_into(&mut t, &shared.0[i], &shared.1, &shared.2).map(|()| t)
        });
        for p in partials {
            match p {
                None => return Err(Error::Execution("morsel worker panicked".into())),
                Some(Err(e)) => return Err(e),
                Some(Ok(t)) => merge_agg(&mut table, t),
            }
        }
    }
    // Global aggregate over an empty input still yields one row.
    if table.is_empty() && group_by.is_empty() {
        table.insert(Vec::new(), aggs.iter().map(Acc::new).collect());
    }
    // Output: group keys ++ agg results, deterministic (sorted by key).
    let mut rows: Vec<(Vec<Value>, Vec<Acc>)> = table.into_iter().collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let width = group_by.len() + aggs.len();
    let vals: Vec<Vec<Value>> = rows
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.into_iter().map(Acc::finish));
            key
        })
        .collect();
    // Column types come from the first non-null value in each column,
    // not the first row: a leading group can aggregate to NULL (e.g.
    // SUM over an all-null group) while a later one is a double.
    let types: Vec<imci_common::DataType> = (0..width)
        .map(|c| {
            vals.iter()
                .find_map(|row| row[c].data_type())
                .unwrap_or(imci_common::DataType::Int)
        })
        .collect();
    let mut out = Batch::empty(&types);
    for row in &vals {
        out.push_values(row)?;
    }
    Ok(out)
}

/// Total-order comparator over `b`'s rows: sort keys, then original
/// position — ties resolve like a stable sort, and every top-K path
/// selects the same rows the full sort would.
fn row_cmp<'a>(
    b: &'a Batch,
    keys: &'a [(usize, bool)],
) -> impl Fn(&usize, &usize) -> std::cmp::Ordering + 'a {
    move |x: &usize, y: &usize| {
        for &(k, desc) in keys {
            let (vx, vy) = (b.cols[k].get(*x), b.cols[k].get(*y));
            let ord = vx.cmp(&vy);
            if ord != std::cmp::Ordering::Equal {
                return if desc { ord.reverse() } else { ord };
            }
        }
        x.cmp(y)
    }
}

fn sort(
    ctx: &ExecContext,
    input: &PhysicalPlan,
    keys: &[(usize, bool)],
    limit: Option<usize>,
    op: usize,
    stats: Option<&StatsCell>,
) -> Result<Batch> {
    let batches = exec_node(input, ctx, op + 1, stats)?;
    let par = ctx.par(batches.len());
    if let Some(k) = limit {
        if k > 0 && par > 1 && batches.len() > 1 {
            // Parallel top-K: each morsel keeps its own batch's K best
            // rows *in original row order*. The global top-K under the
            // (keys, position) total order is contained in the union of
            // per-batch top-Ks, and because survivors stay in original
            // order the concatenation is order-isomorphic to the full
            // input — so the final bounded sort picks exactly the rows,
            // in exactly the order, the serial path would.
            if let Some(s) = stats {
                s.add_morsels(op, batches.len() as u64);
            }
            let n = batches.len();
            let shared = Arc::new((batches, keys.to_vec()));
            let pruned =
                morsel::run_morsels(par, n, move |i| topk_keep(&shared.0[i], &shared.1, k));
            let mut kept = Vec::new();
            for p in pruned {
                match p {
                    None => return Err(Error::Execution("morsel worker panicked".into())),
                    Some(Err(e)) => return Err(e),
                    Some(Ok(b)) => kept.push(b),
                }
            }
            let all = Batch::concat(&kept)?;
            return sort_batch(all, keys, Some(k));
        }
    }
    sort_batch(Batch::concat(&batches)?, keys, limit)
}

/// One morsel of the parallel top-K (see [`sort`] for the equivalence
/// argument): the K best rows of `b`, returned in original row order.
fn topk_keep(b: &Batch, keys: &[(usize, bool)], k: usize) -> Result<Batch> {
    let mut idx: Vec<usize> = (0..b.len).collect();
    if b.len > k {
        idx.select_nth_unstable_by(k - 1, row_cmp(b, keys));
        idx.truncate(k);
        idx.sort_unstable();
    }
    b.gather(&idx)
}

fn sort_batch(b: Batch, keys: &[(usize, bool)], limit: Option<usize>) -> Result<Batch> {
    let mut idx: Vec<usize> = (0..b.len).collect();
    let cmp = row_cmp(&b, keys);
    match limit {
        Some(0) => idx.clear(),
        // Bounded top-K: O(n) partition around the k-th row, then sort
        // only the prefix — no full sort of rows a LIMIT discards.
        Some(k) if k < idx.len() => {
            idx.select_nth_unstable_by(k - 1, &cmp);
            idx.truncate(k);
            idx.sort_unstable_by(&cmp);
        }
        _ => idx.sort_unstable_by(&cmp),
    }
    b.gather(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, Schema, Vid};
    use imci_core::ColumnIndex;

    fn schema() -> Schema {
        Schema::new(
            TableId(1),
            "sales",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("region", DataType::Str),
                ColumnDef::new("qty", DataType::Int),
                ColumnDef::new("price", DataType::Double),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1, 2, 3],
                },
            ],
        )
        .unwrap()
    }

    fn ctx_with_data(n: i64, group_cap: usize) -> (ExecContext, Arc<ColumnIndex>) {
        let idx = ColumnIndex::for_schema(&schema(), group_cap);
        let regions = ["east", "west", "north", "south"];
        for pk in 0..n {
            idx.insert(
                Vid(1),
                &[
                    Value::Int(pk),
                    Value::Str(regions[(pk % 4) as usize].into()),
                    Value::Int(pk % 10),
                    Value::Double(pk as f64 * 1.5),
                ],
            )
            .unwrap();
        }
        idx.advance_visible(Vid(1));
        let mut snaps = FxHashMap::default();
        snaps.insert(TableId(1), Arc::new(idx.snapshot()));
        let mut ctx = ExecContext::new(snaps);
        ctx.parallelism = 2;
        (ctx, idx)
    }

    fn scan_all() -> PhysicalPlan {
        PhysicalPlan::ColumnScan {
            table: TableId(1),
            cols: vec![0, 1, 2, 3],
            prune: vec![],
            filter: None,
        }
    }

    #[test]
    fn full_scan_returns_all_rows() {
        let (ctx, _) = ctx_with_data(100, 16);
        let b = execute(&scan_all(), &ctx).unwrap();
        assert_eq!(b.len, 100);
    }

    #[test]
    fn filter_and_project() {
        let (ctx, _) = ctx_with_data(100, 16);
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan_all()),
                pred: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(10i64)),
            }),
            exprs: vec![
                Expr::col(0),
                Expr::Arith(
                    crate::expr::ArithOp::Mul,
                    Box::new(Expr::col(3)),
                    Box::new(Expr::lit(2.0)),
                ),
            ],
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 10);
        assert_eq!(b.width(), 2);
        assert_eq!(b.cols[1].get(2), Value::Double(6.0)); // 2*1.5*2
    }

    #[test]
    fn pack_pruning_skips_groups() {
        let (mut ctx, _) = ctx_with_data(160, 16); // pk 0..160, 10 groups
        let plan = PhysicalPlan::ColumnScan {
            table: TableId(1),
            cols: vec![0],
            prune: vec![PruneRange {
                col: 0,
                lo: Some(Value::Int(150)),
                hi: None,
            }],
            filter: Some(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(150i64))),
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 10);
        // With pruning disabled the result must be identical.
        ctx.prune_enabled = false;
        let b2 = execute(&plan, &ctx).unwrap();
        assert_eq!(b2.len, 10);
    }

    #[test]
    fn group_agg_sums_per_region() {
        let (ctx, _) = ctx_with_data(100, 16);
        let plan = PhysicalPlan::HashAgg {
            input: Box::new(scan_all()),
            group_by: vec![Expr::col(1)],
            aggs: vec![
                AggCall {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(2)),
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Avg,
                    arg: Some(Expr::col(3)),
                    distinct: false,
                },
            ],
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 4, "four regions");
        // Keys sorted: east, north, south, west. 25 rows each.
        assert_eq!(b.cols[1].get(0), Value::Int(25));
    }

    #[test]
    fn global_agg_without_groups() {
        let (ctx, _) = ctx_with_data(50, 16);
        let plan = PhysicalPlan::HashAgg {
            input: Box::new(scan_all()),
            group_by: vec![],
            aggs: vec![
                AggCall {
                    func: AggFunc::Min,
                    arg: Some(Expr::col(0)),
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Max,
                    arg: Some(Expr::col(0)),
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Count,
                    arg: Some(Expr::col(0)),
                    distinct: true,
                },
            ],
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 1);
        assert_eq!(
            b.row(0),
            vec![Value::Int(0), Value::Int(49), Value::Int(50)]
        );
    }

    #[test]
    fn sort_desc_with_limit() {
        let (ctx, _) = ctx_with_data(30, 8);
        let plan = PhysicalPlan::Sort {
            input: Box::new(scan_all()),
            keys: vec![(0, true)],
            limit: Some(3),
        };
        let b = execute(&plan, &ctx).unwrap();
        assert_eq!(b.len, 3);
        assert_eq!(b.cols[0].get(0), Value::Int(29));
        assert_eq!(b.cols[0].get(2), Value::Int(27));
    }

    #[test]
    fn hash_join_inner() {
        // Self-join: sales s JOIN sales t ON s.qty = t.id (qty in 0..10).
        let (ctx, _) = ctx_with_data(20, 8);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan_all()),
            right: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan_all()),
                pred: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5i64)),
            }),
            left_keys: vec![2],
            right_keys: vec![0],
        };
        let b = execute(&plan, &ctx).unwrap();
        // qty = pk % 10; join matches rows whose qty ∈ {0..4}: pks with
        // pk%10 in 0..5 → 10 of 20 rows, each matching exactly 1.
        assert_eq!(b.len, 10);
        assert_eq!(b.width(), 8);
        for r in 0..b.len {
            assert_eq!(b.cols[2].get(r), b.cols[4].get(r), "join key equality");
        }
    }

    #[test]
    fn limit_without_sort() {
        let (ctx, _) = ctx_with_data(100, 16);
        let plan = PhysicalPlan::Limit {
            input: Box::new(scan_all()),
            n: 7,
        };
        assert_eq!(execute(&plan, &ctx).unwrap().len, 7);
    }

    #[test]
    fn late_materialization_matches_early_baseline() {
        let (mut ctx, idx) = ctx_with_data(100, 16);
        // Deletes give partial visibility inside sealed groups.
        idx.delete(Vid(2), 13).unwrap();
        idx.delete(Vid(2), 57).unwrap();
        idx.advance_visible(Vid(2));
        let mut snaps = FxHashMap::default();
        snaps.insert(TableId(1), Arc::new(idx.snapshot()));
        ctx.snapshots = snaps;
        // One compressed-kernel filter, one fallback (arith) filter.
        let preds = [
            Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit(3i64)).and(Expr::cmp(
                CmpOp::Eq,
                Expr::col(1),
                Expr::Lit(Value::Str("east".into())),
            )),
            Expr::cmp(
                CmpOp::Lt,
                Expr::Arith(
                    crate::expr::ArithOp::Add,
                    Box::new(Expr::col(0)),
                    Box::new(Expr::lit(1i64)),
                ),
                Expr::lit(20i64),
            ),
        ];
        for pred in preds {
            let plan = PhysicalPlan::ColumnScan {
                table: TableId(1),
                cols: vec![0, 1, 2, 3],
                prune: vec![],
                filter: Some(pred),
            };
            ctx.late_materialization = true;
            let on = execute(&plan, &ctx).unwrap();
            ctx.late_materialization = false;
            let off = execute(&plan, &ctx).unwrap();
            assert_eq!(on.len, off.len);
            for r in 0..on.len {
                assert_eq!(on.row(r), off.row(r), "row {r}");
            }
        }
    }

    #[test]
    fn top_k_sort_matches_full_sort_under_ties() {
        let (ctx, _) = ctx_with_data(50, 8);
        // qty = pk % 10 is full of ties; the bounded top-K path must
        // pick the same rows (and order) the full stable sort would.
        let sorted = |limit| {
            let plan = PhysicalPlan::Sort {
                input: Box::new(scan_all()),
                keys: vec![(2, false)],
                limit,
            };
            execute(&plan, &ctx).unwrap()
        };
        let full = sorted(None);
        let topk = sorted(Some(12));
        assert_eq!(topk.len, 12);
        for r in 0..12 {
            assert_eq!(topk.row(r), full.row(r), "row {r}");
        }
        assert_eq!(sorted(Some(0)).len, 0);
        assert_eq!(sorted(Some(500)).len, 50, "limit past the end");
    }

    #[test]
    fn mvcc_snapshot_view_in_scan() {
        let (_, idx) = ctx_with_data(10, 8);
        // Delete under a newer vid; an old snapshot still scans 10 rows.
        let old_snap = Arc::new(idx.snapshot());
        idx.delete(Vid(2), 0).unwrap();
        idx.advance_visible(Vid(2));
        let new_snap = Arc::new(idx.snapshot());
        let mk_ctx = |s: Arc<Snapshot>| {
            let mut m = FxHashMap::default();
            m.insert(TableId(1), s);
            ExecContext::new(m)
        };
        let plan = scan_all();
        assert_eq!(execute(&plan, &mk_ctx(old_snap)).unwrap().len, 10);
        assert_eq!(execute(&plan, &mk_ctx(new_snap)).unwrap().len, 9);
    }

    /// Each parallel merge operator must match the serial baseline
    /// bit-for-bit (the integration proptest covers this broadly; this
    /// is the fast in-crate smoke version).
    #[test]
    fn parallel_matches_serial_on_every_operator() {
        let (mut ctx, _) = ctx_with_data(120, 8); // 15 morsels
        let plans = [
            scan_all(),
            PhysicalPlan::HashAgg {
                input: Box::new(scan_all()),
                group_by: vec![Expr::col(1)],
                aggs: vec![
                    AggCall {
                        func: AggFunc::Sum,
                        arg: Some(Expr::col(2)),
                        distinct: false,
                    },
                    AggCall {
                        func: AggFunc::Avg,
                        arg: Some(Expr::col(3)),
                        distinct: false,
                    },
                ],
            },
            PhysicalPlan::HashJoin {
                left: Box::new(scan_all()),
                right: Box::new(scan_all()),
                left_keys: vec![2],
                right_keys: vec![0],
            },
            PhysicalPlan::Sort {
                input: Box::new(scan_all()),
                keys: vec![(2, true)],
                limit: Some(17),
            },
        ];
        for plan in &plans {
            ctx.parallelism = 1;
            let serial = execute(plan, &ctx).unwrap();
            for par in [2, 4, 7] {
                ctx.parallelism = par;
                let parallel = execute(plan, &ctx).unwrap();
                assert_eq!(serial.len, parallel.len, "par={par}");
                for r in 0..serial.len {
                    assert_eq!(serial.row(r), parallel.row(r), "par={par} row {r}");
                }
            }
        }
    }

    #[test]
    fn stats_report_rows_and_morsels() {
        let (mut ctx, _) = ctx_with_data(64, 8); // 8 groups
        ctx.parallelism = 4;
        let plan = PhysicalPlan::HashAgg {
            input: Box::new(scan_all()),
            group_by: vec![Expr::col(1)],
            aggs: vec![AggCall {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        };
        let (out, stats) = execute_with_stats(&plan, &ctx).unwrap();
        assert_eq!(out.len, 4);
        assert_eq!(stats.rows.len(), 2, "one entry per operator");
        assert_eq!(stats.rows[0], 4, "agg output rows");
        assert_eq!(stats.rows[1], 64, "scan output rows");
        assert_eq!(stats.morsels[1], 8, "one morsel per row group");
        assert!(stats.total_morsels() >= 8);
    }
}
