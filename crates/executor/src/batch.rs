//! Column batches flowing between operators.

use imci_common::{DataType, Result, Value};
use imci_core::{ColumnData, SelVec};

/// A batch of rows in columnar form.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Columns (all the same logical length).
    pub cols: Vec<ColumnData>,
    /// Row count.
    pub len: usize,
}

impl Batch {
    /// An empty batch with the given column types.
    pub fn empty(types: &[DataType]) -> Batch {
        Batch {
            cols: types.iter().map(|t| ColumnData::new(*t)).collect(),
            len: 0,
        }
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Read one row as values (tests, row-format sinks).
    pub fn row(&self, r: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(r)).collect()
    }

    /// Append row `r` of `src` to this batch.
    pub fn push_row_from(&mut self, src: &Batch, r: usize) -> Result<()> {
        for (dst, s) in self.cols.iter_mut().zip(&src.cols) {
            dst.set(self.len, &s.get(r))?;
        }
        self.len += 1;
        Ok(())
    }

    /// Append a row of values.
    pub fn push_values(&mut self, values: &[Value]) -> Result<()> {
        for (dst, v) in self.cols.iter_mut().zip(values) {
            dst.set(self.len, v)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Keep only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Batch> {
        let keep: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i as u32)
            .collect();
        Ok(self.take(&SelVec::from_sorted(keep)))
    }

    /// Keep only the rows a selection vector names (one typed gather
    /// per column).
    pub fn take(&self, sel: &SelVec) -> Batch {
        Batch {
            cols: self.cols.iter().map(|c| c.gather(sel.as_slice())).collect(),
            len: sel.len(),
        }
    }

    /// Drop all rows past the first `n`, in place — `LIMIT` without the
    /// gather-a-prefix copy.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        for c in &mut self.cols {
            c.truncate(n);
        }
        self.len = n;
    }

    /// Gather the given row indices into a new batch (typed bulk copy).
    pub fn gather(&self, rows: &[usize]) -> Result<Batch> {
        let idx: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        Ok(Batch {
            cols: self.cols.iter().map(|c| c.gather(&idx)).collect(),
            len: rows.len(),
        })
    }

    /// Concatenate batches (all must share the same width/types). Typed
    /// bulk appends: no per-cell `Value` boxing, dictionaries merge once
    /// per batch.
    pub fn concat(batches: &[Batch]) -> Result<Batch> {
        if batches.is_empty() {
            return Ok(Batch {
                cols: Vec::new(),
                len: 0,
            });
        }
        let mut out = Batch {
            cols: batches[0]
                .cols
                .iter()
                .map(|c| ColumnData::new(c.data_type()))
                .collect(),
            len: 0,
        };
        for b in batches {
            for (dst, src) in out.cols.iter_mut().zip(&b.cols) {
                dst.append(src, b.len)?;
            }
            out.len += b.len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Batch {
        let mut b = Batch::empty(&[DataType::Int, DataType::Str]);
        for i in 0..5 {
            b.push_values(&[Value::Int(i), Value::Str(format!("r{i}"))])
                .unwrap();
        }
        b
    }

    #[test]
    fn push_and_row() {
        let b = sample();
        assert_eq!(b.len, 5);
        assert_eq!(b.row(2), vec![Value::Int(2), Value::Str("r2".into())]);
    }

    #[test]
    fn filter_and_gather() {
        let b = sample();
        let f = b.filter(&[true, false, true, false, true]).unwrap();
        assert_eq!(f.len, 3);
        assert_eq!(f.row(1)[0], Value::Int(2));
        let g = b.gather(&[4, 0]).unwrap();
        assert_eq!(g.row(0)[0], Value::Int(4));
        assert_eq!(g.row(1)[0], Value::Int(0));
    }

    #[test]
    fn take_and_truncate() {
        let b = sample();
        let t = b.take(&SelVec::from_sorted(vec![1, 3]));
        assert_eq!(t.len, 2);
        assert_eq!(t.row(1), vec![Value::Int(3), Value::Str("r3".into())]);
        let mut tr = sample();
        tr.truncate(2);
        assert_eq!(tr.len, 2);
        assert_eq!(tr.cols[0].len(), 2);
        assert_eq!(tr.row(1)[0], Value::Int(1));
        tr.truncate(10); // no-op past the end
        assert_eq!(tr.len, 2);
    }

    #[test]
    fn concat() {
        let b = sample();
        let c = Batch::concat(&[b.clone(), b]).unwrap();
        assert_eq!(c.len, 10);
        assert_eq!(c.row(7)[1], Value::Str("r2".into()));
    }
}
