//! Column batches flowing between operators.

use imci_common::{DataType, Result, Value};
use imci_core::ColumnData;

/// A batch of rows in columnar form.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Columns (all the same logical length).
    pub cols: Vec<ColumnData>,
    /// Row count.
    pub len: usize,
}

impl Batch {
    /// An empty batch with the given column types.
    pub fn empty(types: &[DataType]) -> Batch {
        Batch {
            cols: types.iter().map(|t| ColumnData::new(*t)).collect(),
            len: 0,
        }
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Read one row as values (tests, row-format sinks).
    pub fn row(&self, r: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(r)).collect()
    }

    /// Append row `r` of `src` to this batch.
    pub fn push_row_from(&mut self, src: &Batch, r: usize) -> Result<()> {
        for (dst, s) in self.cols.iter_mut().zip(&src.cols) {
            dst.set(self.len, &s.get(r))?;
        }
        self.len += 1;
        Ok(())
    }

    /// Append a row of values.
    pub fn push_values(&mut self, values: &[Value]) -> Result<()> {
        for (dst, v) in self.cols.iter_mut().zip(values) {
            dst.set(self.len, v)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Keep only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Batch> {
        let keep: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        self.gather(&keep)
    }

    /// Gather the given row indices into a new batch (typed bulk copy).
    pub fn gather(&self, rows: &[usize]) -> Result<Batch> {
        let idx: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        Ok(Batch {
            cols: self.cols.iter().map(|c| c.gather(&idx)).collect(),
            len: rows.len(),
        })
    }

    /// Concatenate batches (all must share the same width/types).
    pub fn concat(batches: &[Batch]) -> Result<Batch> {
        if batches.is_empty() {
            return Ok(Batch {
                cols: Vec::new(),
                len: 0,
            });
        }
        let mut out = Batch {
            cols: batches[0]
                .cols
                .iter()
                .map(|c| ColumnData::new(c.data_type()))
                .collect(),
            len: 0,
        };
        for b in batches {
            for r in 0..b.len {
                out.push_row_from(b, r)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Batch {
        let mut b = Batch::empty(&[DataType::Int, DataType::Str]);
        for i in 0..5 {
            b.push_values(&[Value::Int(i), Value::Str(format!("r{i}"))])
                .unwrap();
        }
        b
    }

    #[test]
    fn push_and_row() {
        let b = sample();
        assert_eq!(b.len, 5);
        assert_eq!(b.row(2), vec![Value::Int(2), Value::Str("r2".into())]);
    }

    #[test]
    fn filter_and_gather() {
        let b = sample();
        let f = b.filter(&[true, false, true, false, true]).unwrap();
        assert_eq!(f.len, 3);
        assert_eq!(f.row(1)[0], Value::Int(2));
        let g = b.gather(&[4, 0]).unwrap();
        assert_eq!(g.row(0)[0], Value::Int(4));
        assert_eq!(g.row(1)[0], Value::Int(0));
    }

    #[test]
    fn concat() {
        let b = sample();
        let c = Batch::concat(&[b.clone(), b]).unwrap();
        assert_eq!(c.len, 10);
        assert_eq!(c.row(7)[1], Value::Str("r2".into()));
    }
}
