//! Column-based batch-mode execution engine (paper §6.3).
//!
//! * [`batch`] — columnar batches between operators;
//! * [`expr`] — vectorized expression evaluation;
//! * [`plan`] — physical operator tree;
//! * [`exec`] — pipeline execution with parallel pack-pruned scans,
//!   partitioned hash join, hash aggregation, sort/top-N.

pub mod batch;
pub mod exec;
pub mod expr;
pub mod plan;

pub use batch::Batch;
pub use exec::{exec_stream, execute, ExecContext};
pub use expr::{ArithOp, CmpOp, Expr, LikePattern};
pub use plan::{AggCall, AggFunc, PhysicalPlan, PruneRange};
