//! Column-based batch-mode execution engine (paper §6.3).
//!
//! * [`batch`] — columnar batches between operators;
//! * [`expr`] — vectorized expression evaluation;
//! * [`kernels`] — predicate kernels over compressed packs (selection
//!   vectors, frame-of-reference compares, dictionary-code predicates);
//! * [`plan`] — physical operator tree;
//! * [`exec`] — pipeline execution with parallel pack-pruned,
//!   late-materialized scans, partitioned hash join, hash aggregation,
//!   sort/top-K.

pub mod batch;
pub mod exec;
pub mod expr;
pub mod kernels;
pub mod plan;

pub use batch::Batch;
pub use exec::{exec_stream, execute, ExecContext};
pub use expr::{ArithOp, CmpOp, Expr, LikePattern};
pub use kernels::{batch_views, compressible, eval_sel, ColView};
pub use plan::{AggCall, AggFunc, PhysicalPlan, PruneRange};
