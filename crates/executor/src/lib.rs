//! Column-based batch-mode execution engine (paper §6.3).
//!
//! * [`batch`] — columnar batches between operators;
//! * [`expr`] — vectorized expression evaluation;
//! * [`kernels`] — predicate kernels over compressed packs (selection
//!   vectors, frame-of-reference compares, dictionary-code predicates);
//! * [`plan`] — physical operator tree;
//! * [`morsel`] — the shared worker pool behind morsel-driven
//!   parallelism (paper §6.2);
//! * [`exec`] — pipeline execution with morsel-parallel pack-pruned,
//!   late-materialized scans, partitioned hash join, partial hash
//!   aggregation, sort/top-K.

pub mod batch;
pub mod exec;
pub mod expr;
pub mod kernels;
pub mod morsel;
pub mod plan;

pub use batch::Batch;
pub use exec::{exec_stream, execute, execute_with_stats, ExecContext, ExecStats};
pub use expr::{ArithOp, CmpOp, Expr, LikePattern};
pub use kernels::{batch_views, compressible, eval_sel, ColView};
pub use morsel::WorkerPool;
pub use plan::{AggCall, AggFunc, PhysicalPlan, PruneRange};
