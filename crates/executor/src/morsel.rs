//! Shared morsel worker pool (paper §6.2 executor fan-out).
//!
//! One process-global pool, sized by `available_parallelism`, executes
//! *morsels* — independent work units such as one row-group scan, one
//! partial-aggregation batch, or one join-probe batch — on behalf of
//! every concurrently running query. Two scheduling rules keep the
//! shared pool deadlock-free no matter how many queries overlap:
//!
//! * only a query's orchestrator thread (the `execute` caller) ever
//!   blocks waiting for results; pool tasks never wait on other tasks
//!   or dispatch nested morsel runs, so every submitted job completes;
//! * a query dispatches at most `ExecContext::parallelism` *runner*
//!   tasks. Each runner pulls morsel indices from a shared counter
//!   (dynamic load balancing across uneven morsels) and writes its
//!   result into the morsel's own slot, so output order is a function
//!   of morsel index, never of thread scheduling.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// Pending jobs. This lock is a leaf: it is never taken while any
    /// other lock is held, and no job runs under it.
    queue: Mutex<VecDeque<Job>>,
    work: Condvar,
}

/// The process-global worker pool behind morsel-driven execution.
pub struct WorkerPool {
    state: Arc<PoolState>,
    threads: usize,
}

impl WorkerPool {
    fn with_threads(n: usize) -> WorkerPool {
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        });
        let mut threads = 0;
        for i in 0..n.max(1) {
            let st = state.clone();
            if std::thread::Builder::new()
                .name(format!("morsel-{i}"))
                .spawn(move || worker_loop(st))
                .is_ok()
            {
                threads += 1;
            }
        }
        // If no worker thread could be spawned, `run_morsels` falls
        // back to inline execution — degraded, never stuck.
        WorkerPool { state, threads }
    }

    /// The shared pool, created on first use and sized by the machine
    /// (`available_parallelism`). Queries cap their own share of it via
    /// `ExecContext::parallelism`.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            WorkerPool::with_threads(n)
        })
    }

    /// Worker threads actually running.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn submit(&self, job: Job) {
        self.state.queue.lock().push_back(job);
        self.state.work.notify_one();
    }
}

fn worker_loop(state: Arc<PoolState>) {
    loop {
        let job = {
            let mut q = state.queue.lock();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                state.work.wait(&mut q);
            }
        };
        // A panicking morsel must not take the pool thread down with
        // it: the morsel's slot stays empty and the orchestrator turns
        // that into an execution error.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

struct RunState<T> {
    /// One slot per morsel, filled in whatever order morsels finish but
    /// read back in morsel order.
    slots: Vec<Option<T>>,
    /// Runner tasks still live (a runner counts until its exit guard
    /// drops, panic included).
    runners: usize,
}

struct MorselRun<T> {
    next: AtomicUsize,
    done: Mutex<RunState<T>>,
    finished: Condvar,
}

/// Decrements the live-runner count on every exit path. Without this a
/// panic inside a morsel would leave the orchestrator waiting forever.
struct RunnerExit<T> {
    run: Arc<MorselRun<T>>,
}

impl<T> Drop for RunnerExit<T> {
    fn drop(&mut self) {
        let mut st = self.run.done.lock();
        st.runners -= 1;
        if st.runners == 0 {
            self.run.finished.notify_all();
        }
    }
}

/// Run morsels `f(0)..f(n-1)` on the shared pool with at most `par` in
/// flight, returning the results in morsel order. A `None` slot means
/// that morsel's worker panicked. Runs inline — no pool round trip —
/// when `par <= 1`, there is at most one morsel, or the pool has no
/// threads.
pub fn run_morsels<T, F>(par: usize, n: usize, f: F) -> Vec<Option<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let pool = WorkerPool::global();
    if par <= 1 || n <= 1 || pool.threads() == 0 {
        return (0..n).map(|i| Some(f(i))).collect();
    }
    let run = Arc::new(MorselRun {
        next: AtomicUsize::new(0),
        done: Mutex::new(RunState {
            slots: (0..n).map(|_| None).collect(),
            runners: par.min(n),
        }),
        finished: Condvar::new(),
    });
    let f = Arc::new(f);
    for _ in 0..par.min(n) {
        let run = run.clone();
        let f = f.clone();
        pool.submit(Box::new(move || {
            let _exit = RunnerExit { run: run.clone() };
            loop {
                let i = run.next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                run.done.lock().slots[i] = Some(v);
            }
        }));
    }
    let mut st = run.done.lock();
    while st.runners > 0 {
        run.finished.wait(&mut st);
    }
    std::mem::take(&mut st.slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_morsel_order() {
        for par in [1, 2, 4, 7] {
            let out = run_morsels(par, 40, |i| i * i);
            let got: Vec<usize> = out.into_iter().map(|v| v.unwrap()).collect();
            let want: Vec<usize> = (0..40).map(|i| i * i).collect();
            assert_eq!(got, want, "par={par}");
        }
    }

    #[test]
    fn zero_and_one_morsel_run_inline() {
        assert!(run_morsels(4, 0, |i| i).is_empty());
        assert_eq!(run_morsels(4, 1, |i| i + 1), vec![Some(1)]);
    }

    #[test]
    fn panicking_morsel_leaves_an_empty_slot() {
        let out = run_morsels(2, 8, |i| {
            assert!(i != 5, "boom");
            i
        });
        assert_eq!(out.len(), 8);
        for (i, slot) in out.iter().enumerate() {
            if i == 5 {
                assert!(slot.is_none(), "panicked morsel must stay empty");
            } else {
                assert_eq!(*slot, Some(i));
            }
        }
    }

    #[test]
    fn concurrent_runs_share_the_pool() {
        let handles: Vec<_> = (0..4)
            .map(|q| {
                std::thread::spawn(move || {
                    let out = run_morsels(3, 25, move |i| q * 100 + i);
                    out.into_iter()
                        .enumerate()
                        .all(|(i, v)| v == Some(q * 100 + i))
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }
}
