//! Vectorized expression evaluation (paper §6.3 "Expression Evaluation").
//!
//! Expressions evaluate over a [`Batch`] column-at-a-time. Comparison
//! and arithmetic over `i64`/`f64` columns run as tight loops over the
//! typed vectors (the auto-vectorizer's bread and butter — our stand-in
//! for the paper's hand-written SIMD kernels), falling back to generic
//! `Value` evaluation for mixed/string cases.

use crate::batch::Batch;
use imci_common::{DataType, Error, Result, Value};
use imci_core::ColumnData;
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Mirror the operator across the operands: `a op b` ⇔
    /// `b op.flip() a` (used to normalize `lit op col` to `col op lit`).
    #[inline]
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq | CmpOp::Ne => self,
        }
    }

    /// Test an ordering against the operator.
    #[inline]
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// LIKE pattern kinds we support (enough for the TPC-H-derived queries).
#[derive(Debug, Clone, PartialEq)]
pub enum LikePattern {
    /// `'foo%'`
    Prefix(String),
    /// `'%foo'`
    Suffix(String),
    /// `'%foo%'`
    Contains(String),
    /// `'foo'` (no wildcard: equality)
    Exact(String),
}

impl LikePattern {
    /// Parse a SQL LIKE pattern (only %-wildcards at the edges).
    pub fn parse(pat: &str) -> Result<LikePattern> {
        let starts = pat.starts_with('%');
        let ends = pat.ends_with('%') && pat.len() > 1;
        let inner = pat.trim_matches('%');
        if inner.contains('%') || inner.contains('_') {
            return Err(Error::Unsupported(format!(
                "LIKE pattern '{pat}' (only edge %% wildcards supported)"
            )));
        }
        Ok(match (starts, ends) {
            (true, true) => LikePattern::Contains(inner.to_string()),
            (true, false) => LikePattern::Suffix(inner.to_string()),
            (false, true) => LikePattern::Prefix(inner.to_string()),
            (false, false) => LikePattern::Exact(inner.to_string()),
        })
    }

    /// Match a string.
    #[inline]
    pub fn matches(&self, s: &str) -> bool {
        match self {
            LikePattern::Prefix(p) => s.starts_with(p.as_str()),
            LikePattern::Suffix(p) => s.ends_with(p.as_str()),
            LikePattern::Contains(p) => s.contains(p.as_str()),
            LikePattern::Exact(p) => s == p,
        }
    }
}

/// An expression tree over batch columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (position in the batch).
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `x BETWEEN lo AND hi` (inclusive).
    Between(Box<Expr>, Value, Value),
    /// `x IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Value>),
    /// `x LIKE 'pat'`.
    Like(Box<Expr>, LikePattern),
    /// `x IS NULL` / `x IS NOT NULL`.
    IsNull(Box<Expr>, bool),
    /// `YEAR(date_expr)`.
    Year(Box<Expr>),
}

impl Expr {
    /// Convenience: column `i`.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Convenience: `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// Convenience: comparison with a literal.
    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp(op, Box::new(l), Box::new(r))
    }

    /// Columns referenced by this expression.
    pub fn referenced_cols(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.referenced_cols(out);
                b.referenced_cols(out);
            }
            Expr::Not(a)
            | Expr::Between(a, _, _)
            | Expr::InList(a, _)
            | Expr::Like(a, _)
            | Expr::IsNull(a, _)
            | Expr::Year(a) => a.referenced_cols(out),
        }
    }

    /// Remap column references through `map` (old position → new).
    pub fn remap(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(a.remap(map)), Box::new(b.remap(map))),
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.remap(map)), Box::new(b.remap(map)))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.remap(map)), Box::new(b.remap(map))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.remap(map)), Box::new(b.remap(map))),
            Expr::Not(a) => Expr::Not(Box::new(a.remap(map))),
            Expr::Between(a, lo, hi) => {
                Expr::Between(Box::new(a.remap(map)), lo.clone(), hi.clone())
            }
            Expr::InList(a, vs) => Expr::InList(Box::new(a.remap(map)), vs.clone()),
            Expr::Like(a, p) => Expr::Like(Box::new(a.remap(map)), p.clone()),
            Expr::IsNull(a, n) => Expr::IsNull(Box::new(a.remap(map)), *n),
            Expr::Year(a) => Expr::Year(Box::new(a.remap(map))),
        }
    }

    /// Evaluate to a value column.
    pub fn eval(&self, batch: &Batch) -> Result<ColumnData> {
        match self {
            Expr::Col(i) => Ok(batch.cols[*i].clone()),
            Expr::Lit(v) => {
                let ty = v.data_type().unwrap_or(DataType::Int);
                let mut c = ColumnData::new(ty);
                for r in 0..batch.len {
                    c.set(r, v)?;
                }
                Ok(c)
            }
            Expr::Arith(op, a, b) => eval_arith(*op, a, b, batch),
            Expr::Year(a) => {
                let col = a.eval(batch)?;
                let mut out = ColumnData::new(DataType::Int);
                for r in 0..batch.len {
                    match col.get(r) {
                        Value::Null => out.set(r, &Value::Null)?,
                        v => {
                            let days = v
                                .as_int()
                                .ok_or_else(|| Error::Execution("YEAR() on non-date".into()))?;
                            let y = imci_common::value::format_date(days)[..4]
                                .parse::<i64>()
                                .unwrap_or(0);
                            out.set(r, &Value::Int(y))?;
                        }
                    }
                }
                Ok(out)
            }
            // Predicates evaluated in value context: 1/0/NULL ints.
            _ => {
                let mask = self.eval_mask(batch)?;
                let mut out = ColumnData::new(DataType::Int);
                for (r, m) in mask.iter().enumerate() {
                    out.set(r, &Value::Int(*m as i64))?;
                }
                Ok(out)
            }
        }
    }

    /// Evaluate as a selection mask (SQL three-valued logic collapses
    /// NULL to false, as in a WHERE clause).
    pub fn eval_mask(&self, batch: &Batch) -> Result<Vec<bool>> {
        match self {
            Expr::And(a, b) => {
                let mut m = a.eval_mask(batch)?;
                let mb = b.eval_mask(batch)?;
                for (x, y) in m.iter_mut().zip(mb) {
                    *x = *x && y;
                }
                Ok(m)
            }
            Expr::Or(a, b) => {
                let mut m = a.eval_mask(batch)?;
                let mb = b.eval_mask(batch)?;
                for (x, y) in m.iter_mut().zip(mb) {
                    *x = *x || y;
                }
                Ok(m)
            }
            Expr::Not(a) => {
                let mut m = a.eval_mask(batch)?;
                for x in m.iter_mut() {
                    *x = !*x;
                }
                Ok(m)
            }
            Expr::Cmp(op, a, b) => eval_cmp_mask(*op, a, b, batch),
            Expr::Between(a, lo, hi) => {
                let ge = Expr::Cmp(CmpOp::Ge, a.clone(), Box::new(Expr::Lit(lo.clone())));
                let le = Expr::Cmp(CmpOp::Le, a.clone(), Box::new(Expr::Lit(hi.clone())));
                ge.and(le).eval_mask(batch)
            }
            Expr::InList(a, vs) => {
                let col = a.eval(batch)?;
                let set: imci_common::FxHashSet<&Value> = vs.iter().collect();
                Ok((0..batch.len)
                    .map(|r| {
                        let v = col.get(r);
                        !v.is_null() && set.contains(&v)
                    })
                    .collect())
            }
            Expr::Like(a, pat) => {
                let col = a.eval(batch)?;
                Ok((0..batch.len)
                    .map(|r| match col.get(r) {
                        Value::Str(s) => pat.matches(&s),
                        _ => false,
                    })
                    .collect())
            }
            Expr::IsNull(a, negated) => {
                let col = a.eval(batch)?;
                Ok((0..batch.len)
                    .map(|r| col.get(r).is_null() != *negated)
                    .collect())
            }
            Expr::Col(_) | Expr::Lit(_) | Expr::Arith(..) | Expr::Year(_) => {
                let col = self.eval(batch)?;
                Ok((0..batch.len)
                    .map(|r| matches!(col.get(r), Value::Int(x) if x != 0))
                    .collect())
            }
        }
    }
}

fn eval_cmp_mask(op: CmpOp, a: &Expr, b: &Expr, batch: &Batch) -> Result<Vec<bool>> {
    // Fast path: Int column vs Int literal — one tight loop.
    if let (Expr::Col(i), Expr::Lit(Value::Int(k))) = (a, b) {
        if let ColumnData::Int { vals, nulls } = &batch.cols[*i] {
            let k = *k;
            return Ok(vals
                .iter()
                .zip(nulls)
                .take(batch.len)
                .map(|(v, &nl)| !nl && op.test(v.cmp(&k)))
                .collect());
        }
    }
    // Fast path: Double column vs numeric literal.
    if let (Expr::Col(i), Expr::Lit(lit)) = (a, b) {
        if let (ColumnData::Double { vals, nulls }, Some(k)) = (&batch.cols[*i], lit.as_f64()) {
            return Ok(vals
                .iter()
                .zip(nulls)
                .take(batch.len)
                .map(|(v, &nl)| !nl && op.test(v.total_cmp(&k)))
                .collect());
        }
    }
    let ca = a.eval(batch)?;
    let cb = b.eval(batch)?;
    Ok((0..batch.len)
        .map(|r| match ca.get(r).sql_cmp(&cb.get(r)) {
            Some(ord) => op.test(ord),
            None => false,
        })
        .collect())
}

fn eval_arith(op: ArithOp, a: &Expr, b: &Expr, batch: &Batch) -> Result<ColumnData> {
    let ca = a.eval(batch)?;
    let cb = b.eval(batch)?;
    // Typed fast path: Double ⊙ Double.
    if let (
        ColumnData::Double {
            vals: va,
            nulls: na,
        },
        ColumnData::Double {
            vals: vb,
            nulls: nb,
        },
    ) = (&ca, &cb)
    {
        let n = batch.len;
        let mut vals = Vec::with_capacity(n);
        let mut nulls = Vec::with_capacity(n);
        for r in 0..n {
            let nl = na[r] || nb[r];
            nulls.push(nl);
            let (x, y) = (va[r], vb[r]);
            vals.push(if nl {
                0.0
            } else {
                match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                }
            });
        }
        return Ok(ColumnData::Double { vals, nulls });
    }
    // Generic path with numeric promotion.
    let n = batch.len;
    let int_int = matches!((&ca, &cb), (ColumnData::Int { .. }, ColumnData::Int { .. }))
        && op != ArithOp::Div;
    let mut out = ColumnData::new(if int_int {
        DataType::Int
    } else {
        DataType::Double
    });
    for r in 0..n {
        let (x, y) = (ca.get(r), cb.get(r));
        if x.is_null() || y.is_null() {
            out.set(r, &Value::Null)?;
            continue;
        }
        let v = if int_int {
            let (x, y) = (x.as_int().unwrap(), y.as_int().unwrap());
            Value::Int(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => unreachable!(),
            })
        } else {
            let (x, y) = (
                x.as_f64()
                    .ok_or_else(|| Error::Execution(format!("arith on non-numeric {x}")))?,
                y.as_f64()
                    .ok_or_else(|| Error::Execution(format!("arith on non-numeric {y}")))?,
            );
            Value::Double(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
            })
        };
        out.set(r, &v)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;

    fn batch() -> Batch {
        let mut a = ColumnData::new(DataType::Int);
        let mut b = ColumnData::new(DataType::Double);
        let mut s = ColumnData::new(DataType::Str);
        for i in 0..10 {
            a.set(i, &Value::Int(i as i64)).unwrap();
            b.set(i, &Value::Double(i as f64 * 0.5)).unwrap();
            s.set(i, &Value::Str(format!("item-{i}"))).unwrap();
        }
        a.set(9, &Value::Null).unwrap();
        Batch {
            cols: vec![a, b, s],
            len: 10,
        }
    }

    #[test]
    fn int_cmp_fast_path() {
        let b = batch();
        let m = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(5i64))
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m.iter().filter(|&&x| x).count(), 5);
        assert!(!m[9], "NULL never matches");
    }

    #[test]
    fn double_cmp_and_arith() {
        let b = batch();
        let m = Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit(2.0))
            .eval_mask(&b)
            .unwrap();
        assert_eq!(m.iter().filter(|&&x| x).count(), 6); // 2.0..4.5
        let sum = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::col(1)),
            Box::new(Expr::lit(2.0)),
        )
        .eval(&b)
        .unwrap();
        assert_eq!(sum.get(3), Value::Double(3.0));
    }

    #[test]
    fn and_or_not_between_in() {
        let b = batch();
        let e = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(2i64)).and(Expr::cmp(
            CmpOp::Le,
            Expr::col(0),
            Expr::lit(6i64),
        ));
        assert_eq!(e.eval_mask(&b).unwrap().iter().filter(|&&x| x).count(), 5);
        let between = Expr::Between(Box::new(Expr::col(0)), Value::Int(2), Value::Int(6));
        assert_eq!(
            between.eval_mask(&b).unwrap(),
            e.eval_mask(&b).unwrap(),
            "BETWEEN == >= AND <="
        );
        let inl = Expr::InList(
            Box::new(Expr::col(0)),
            vec![Value::Int(1), Value::Int(3), Value::Int(99)],
        );
        assert_eq!(inl.eval_mask(&b).unwrap().iter().filter(|&&x| x).count(), 2);
        let not = Expr::Not(Box::new(between));
        assert_eq!(not.eval_mask(&b).unwrap().iter().filter(|&&x| x).count(), 5);
    }

    #[test]
    fn like_patterns() {
        assert!(LikePattern::parse("abc%").unwrap().matches("abcdef"));
        assert!(LikePattern::parse("%def").unwrap().matches("abcdef"));
        assert!(LikePattern::parse("%cd%").unwrap().matches("abcdef"));
        assert!(!LikePattern::parse("%cd%").unwrap().matches("abef"));
        assert!(LikePattern::parse("a_c").is_err());
        let b = batch();
        let e = Expr::Like(
            Box::new(Expr::col(2)),
            LikePattern::parse("item-%").unwrap(),
        );
        assert_eq!(e.eval_mask(&b).unwrap().iter().filter(|&&x| x).count(), 10);
    }

    #[test]
    fn is_null_and_year() {
        let b = batch();
        let e = Expr::IsNull(Box::new(Expr::col(0)), false);
        assert_eq!(e.eval_mask(&b).unwrap().iter().filter(|&&x| x).count(), 1);
        let mut d = ColumnData::new(DataType::Date);
        d.set(
            0,
            &Value::Date(imci_common::value::parse_date_str("1995-06-17").unwrap()),
        )
        .unwrap();
        let db = Batch {
            cols: vec![d],
            len: 1,
        };
        let y = Expr::Year(Box::new(Expr::col(0))).eval(&db).unwrap();
        assert_eq!(y.get(0), Value::Int(1995));
    }

    #[test]
    fn int_arith_stays_int_except_div() {
        let b = batch();
        let add = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(100i64)),
        )
        .eval(&b)
        .unwrap();
        assert_eq!(add.get(1), Value::Int(101));
        assert_eq!(add.get(9), Value::Null, "null propagates");
        let div = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(2i64)),
        )
        .eval(&b)
        .unwrap();
        assert_eq!(div.get(1), Value::Double(0.5));
    }
}
