//! Latency injection for the simulated shared storage.
//!
//! The paper's Table 1 describes the real volume (288 k IOPS random-read
//! 16 KiB, 18 k IOPS sequential-write 128 KiB, RDMA network). What the
//! experiments depend on is the *ratio* between operations: an fsync on
//! the commit path is far more expensive than an append, which is more
//! expensive than a page-cache hit. The profile below lets benches dial
//! those in; unit tests run with everything at zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-operation latencies, in nanoseconds.
#[derive(Debug, Clone)]
pub struct LatencyProfile {
    /// Cost of making the log durable (commit-path fsync).
    pub fsync_ns: u64,
    /// Fixed cost per append call.
    pub append_ns: u64,
    /// Streaming cost per KiB appended.
    pub append_per_kib_ns: u64,
    /// Cost per log read call.
    pub read_ns: u64,
    /// Cost of a 16 KiB page read (storage-side, i.e. buffer-pool miss).
    pub page_read_ns: u64,
    /// Cost of a page write-back.
    pub page_write_ns: u64,
    /// Fixed cost per checkpoint-object op.
    pub object_ns: u64,
    /// Streaming cost per KiB of checkpoint object data.
    pub object_per_kib_ns: u64,
}

impl LatencyProfile {
    /// All-zero profile: no injected latency (unit tests).
    pub fn zero() -> LatencyProfile {
        LatencyProfile {
            fsync_ns: 0,
            append_ns: 0,
            append_per_kib_ns: 0,
            read_ns: 0,
            page_read_ns: 0,
            page_write_ns: 0,
            object_ns: 0,
            object_per_kib_ns: 0,
        }
    }

    /// Profile loosely calibrated to the paper's PolarFS volume (Table 1):
    /// RDMA-attached NVMe-class storage. fsync ≈ 30 µs, page read ≈ 50 µs
    /// (16 KiB random read at 288 k IOPS ≈ 3.5 µs of device time plus
    /// network round trip), appends stream at ~2.3 GiB/s.
    pub fn polarfs_like() -> LatencyProfile {
        LatencyProfile {
            fsync_ns: 30_000,
            append_ns: 1_000,
            append_per_kib_ns: 400,
            read_ns: 1_000,
            page_read_ns: 50_000,
            page_write_ns: 55_000,
            object_ns: 20_000,
            object_per_kib_ns: 400,
        }
    }

    fn busy_wait(ns: u64) {
        if ns == 0 {
            return;
        }
        // Sleep is only accurate at ≥ ~1 ms granularity; the latencies we
        // inject are tens of µs, so spin on a monotonic clock instead.
        let deadline = Instant::now() + Duration::from_nanos(ns);
        if ns > 2_000_000 {
            std::thread::sleep(Duration::from_nanos(ns - 1_000_000));
        }
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    pub(crate) fn fsync(&self) {
        Self::busy_wait(self.fsync_ns);
    }

    pub(crate) fn append(&self, bytes: usize) {
        Self::busy_wait(self.append_ns + self.append_per_kib_ns * (bytes as u64 / 1024));
    }

    pub(crate) fn read(&self, _bytes: usize) {
        Self::busy_wait(self.read_ns);
    }

    pub(crate) fn page_read(&self) {
        Self::busy_wait(self.page_read_ns);
    }

    pub(crate) fn page_write(&self) {
        Self::busy_wait(self.page_write_ns);
    }

    pub(crate) fn object_put(&self, bytes: usize) {
        Self::busy_wait(self.object_ns + self.object_per_kib_ns * (bytes as u64 / 1024));
    }

    pub(crate) fn object_get(&self, bytes: usize) {
        Self::busy_wait(self.object_ns + self.object_per_kib_ns * (bytes as u64 / 1024));
    }
}

/// A tiny helper for benches: counts simulated time spent in fsyncs.
#[derive(Default)]
pub struct FsyncClock {
    total_ns: AtomicU64,
}

impl FsyncClock {
    /// Add `ns` nanoseconds.
    pub fn add(&self, ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_profile_is_free() {
        let p = LatencyProfile::zero();
        let t = Instant::now();
        for _ in 0..1000 {
            p.fsync();
            p.append(4096);
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn busy_wait_waits_roughly() {
        let p = LatencyProfile {
            fsync_ns: 200_000,
            ..LatencyProfile::zero()
        };
        let t = Instant::now();
        p.fsync();
        assert!(t.elapsed() >= Duration::from_micros(190));
    }

    #[test]
    fn polarfs_like_ratios() {
        let p = LatencyProfile::polarfs_like();
        // The shape that matters for Fig. 11: fsync must dominate appends.
        assert!(p.fsync_ns > 10 * p.append_ns);
        // And page misses must dominate log reads (motivates the RO
        // buffer pool in §5.3).
        assert!(p.page_read_ns > 10 * p.read_ns);
    }
}
