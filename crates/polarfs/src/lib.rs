//! Simulated PolarFS: the shared storage layer of PolarDB-IMCI.
//!
//! The real PolarFS (Cao et al., VLDB'18) is a user-space distributed
//! file system reached over RDMA. Every experiment in the paper depends
//! only on its *interface* and *relative* latencies, so this crate
//! provides an in-process stand-in with three facilities:
//!
//! * **append-only log files** — the REDO log and Binlog live here;
//!   writers append, readers read from arbitrary offsets, `fsync` incurs
//!   a configurable latency (this is what makes the Binlog baseline in
//!   Fig. 11 measurably slower);
//! * **a page store** — the row store spills/loads 16 KiB pages;
//! * **an object store** — column-index checkpoints (sealed packs, VID
//!   map snapshots, locator snapshots) are persisted as named objects,
//!   which is what new RO nodes load during scale-out (Fig. 14).
//!
//! All state is shared via `Arc`, so the RW node and every RO node in a
//! simulated cluster literally share storage, like the real system.

pub mod latency;
pub mod stats;

use bytes::Bytes;
use imci_common::{Error, PageId, Result};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

pub use latency::LatencyProfile;
pub use stats::IoStats;

/// A single append-only file (e.g. the REDO log).
struct LogFile {
    /// Contents; appends extend it. Kept as one Vec: our logs are
    /// bounded by bench length and reads clone only the requested range.
    data: Mutex<Vec<u8>>,
    /// Bytes made durable by the last fsync.
    synced_len: Mutex<u64>,
    /// Signalled on every append so tail-readers can block.
    grew: Condvar,
}

/// Handle to the simulated shared storage. Cheap to clone.
#[derive(Clone)]
pub struct PolarFs {
    inner: Arc<FsInner>,
}

/// Writer-liveness register state ([`PolarFs::heartbeat`]).
struct LeaseState {
    /// Epoch of the writer that stamped the last beat.
    epoch: u64,
    /// Monotonic beat counter; waiters key off it, not wall time.
    beats: u64,
    /// When the last beat landed (`None` before the first beat).
    last_beat: Option<std::time::Instant>,
}

/// Snapshot of the lease register, returned by [`PolarFs::lease`].
#[derive(Debug, Clone, Copy)]
pub struct LeaseInfo {
    /// Epoch of the writer that stamped the last beat.
    pub epoch: u64,
    /// Total beats stamped since the volume was created.
    pub beats: u64,
    /// Time since the last beat (`None` before the first beat).
    pub age: Option<std::time::Duration>,
}

struct FsInner {
    logs: RwLock<BTreeMap<String, Arc<LogFile>>>,
    pages: RwLock<BTreeMap<(String, PageId), Bytes>>,
    objects: RwLock<BTreeMap<String, Bytes>>,
    latency: LatencyProfile,
    stats: IoStats,
    /// Volume-wide writer epoch — the I/O fencing register of the real
    /// PolarFS. Log appends carry the writer's epoch; an append with a
    /// stale epoch is rejected, so after a failover bumps the register
    /// a deposed ("zombie") RW can never extend the REDO log again.
    writer_epoch: std::sync::atomic::AtomicU64,
    /// Writer-liveness lease register, fenced by the same epoch as log
    /// appends. The RW stamps it periodically; the cluster supervisor
    /// watches it to detect writer death.
    lease: Mutex<LeaseState>,
    /// Signalled on every accepted heartbeat so watchers can block.
    lease_beat: Condvar,
}

impl PolarFs {
    /// Create a fresh volume with the given latency profile.
    pub fn new(latency: LatencyProfile) -> PolarFs {
        PolarFs {
            inner: Arc::new(FsInner {
                logs: RwLock::new(BTreeMap::new()),
                pages: RwLock::new(BTreeMap::new()),
                objects: RwLock::new(BTreeMap::new()),
                latency,
                stats: IoStats::default(),
                writer_epoch: std::sync::atomic::AtomicU64::new(0),
                lease: Mutex::new(LeaseState {
                    epoch: 0,
                    beats: 0,
                    last_beat: None,
                }),
                lease_beat: Condvar::new(),
            }),
        }
    }

    /// Create a volume with zero injected latency (unit tests).
    pub fn instant() -> PolarFs {
        PolarFs::new(LatencyProfile::zero())
    }

    /// I/O statistics counters.
    pub fn stats(&self) -> &IoStats {
        &self.inner.stats
    }

    /// The latency profile in force.
    pub fn latency(&self) -> &LatencyProfile {
        &self.inner.latency
    }

    fn log(&self, name: &str) -> Arc<LogFile> {
        if let Some(f) = self.inner.logs.read().get(name) {
            return f.clone();
        }
        let mut w = self.inner.logs.write();
        w.entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(LogFile {
                    data: Mutex::new(Vec::new()),
                    synced_len: Mutex::new(0),
                    grew: Condvar::new(),
                })
            })
            .clone()
    }

    // ---- writer epoch (I/O fencing) ----

    /// The volume's current writer epoch.
    pub fn current_epoch(&self) -> u64 {
        self.inner
            .writer_epoch
            .load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Advance the writer epoch and return the new value. Called by
    /// crash recovery and RO→RW promotion *before* the new writer is
    /// built: from this point every append carrying an older epoch is
    /// rejected, so the drained log tail is final.
    pub fn bump_epoch(&self) -> u64 {
        self.inner
            .writer_epoch
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            + 1
    }

    // ---- writer lease (liveness register) ----

    /// Stamp the writer-liveness lease. Fenced exactly like
    /// [`PolarFs::append_fenced`]: a beat carrying an epoch older than
    /// the volume's writer epoch is rejected with [`Error::Failover`],
    /// so a deposed RW cannot keep looking alive (the epoch check and
    /// the stamp happen under the lease lock, so a concurrent
    /// [`PolarFs::bump_epoch`] either fences this beat or happens
    /// strictly after it). Returns the new beat counter.
    pub fn heartbeat(&self, epoch: u64) -> Result<u64> {
        let beats;
        {
            let mut lease = self.inner.lease.lock();
            let current = self.current_epoch();
            if epoch < current {
                return Err(Error::Failover(format!(
                    "heartbeat fenced: writer epoch {epoch} < volume epoch {current}"
                )));
            }
            lease.epoch = epoch;
            lease.beats += 1;
            lease.last_beat = Some(std::time::Instant::now());
            beats = lease.beats;
        }
        self.inner.lease_beat.notify_all();
        Ok(beats)
    }

    /// Snapshot the lease register: epoch and beat counter of the last
    /// accepted heartbeat, plus its age. `age == None` means no writer
    /// has ever stamped the lease.
    pub fn lease(&self) -> LeaseInfo {
        let lease = self.inner.lease.lock();
        LeaseInfo {
            epoch: lease.epoch,
            beats: lease.beats,
            age: lease.last_beat.map(|t| t.elapsed()),
        }
    }

    /// Block until the lease beat counter advances past `seen` (or the
    /// timeout elapses) and return the current counter. The cluster
    /// supervisor parks here between liveness checks instead of
    /// polling.
    pub fn wait_beat(&self, seen: u64, timeout: std::time::Duration) -> u64 {
        let mut lease = self.inner.lease.lock();
        if lease.beats > seen {
            return lease.beats;
        }
        let _ = self.inner.lease_beat.wait_for(&mut lease, timeout);
        lease.beats
    }

    // ---- append-only log files ----

    /// Append `bytes` to log `name`; returns the offset of the first
    /// written byte. Latency: per-append cost + per-KiB streaming cost.
    pub fn append(&self, name: &str, bytes: &[u8]) -> u64 {
        let f = self.log(name);
        let off;
        {
            let mut data = f.data.lock();
            off = data.len() as u64;
            data.extend_from_slice(bytes);
        }
        f.grew.notify_all();
        self.inner.stats.record_append(bytes.len());
        self.inner.latency.append(bytes.len());
        off
    }

    /// Fenced append: like [`PolarFs::append`] but rejected with a
    /// [`Error::Failover`] when `epoch` is older than the volume's
    /// writer epoch. The epoch check happens under the log's data lock,
    /// so a concurrent [`PolarFs::bump_epoch`] either fences this
    /// append entirely or happens strictly after it — a stale append
    /// can never slip in *during* a promotion.
    pub fn append_fenced(&self, name: &str, bytes: &[u8], epoch: u64) -> Result<u64> {
        let f = self.log(name);
        let off;
        {
            let mut data = f.data.lock();
            let current = self.current_epoch();
            if epoch < current {
                return Err(Error::Failover(format!(
                    "append to {name} fenced: writer epoch {epoch} < volume epoch {current}"
                )));
            }
            off = data.len() as u64;
            data.extend_from_slice(bytes);
        }
        f.grew.notify_all();
        self.inner.stats.record_append(bytes.len());
        self.inner.latency.append(bytes.len());
        Ok(off)
    }

    /// Current length of log `name` (0 if absent).
    pub fn log_len(&self, name: &str) -> u64 {
        self.log(name).data.lock().len() as u64
    }

    /// Force log `name` durable; models the fsync on the commit path.
    pub fn fsync(&self, name: &str) {
        let f = self.log(name);
        {
            let data = f.data.lock();
            *f.synced_len.lock() = data.len() as u64;
        }
        self.inner.stats.record_fsync();
        self.inner.latency.fsync();
    }

    /// Durable (fsynced) length of log `name`.
    pub fn synced_len(&self, name: &str) -> u64 {
        *self.log(name).synced_len.lock()
    }

    /// Read up to `max` bytes from `offset`; returns an owned copy.
    /// Empty result means the reader caught up with the tail.
    pub fn read_log(&self, name: &str, offset: u64, max: usize) -> Vec<u8> {
        let f = self.log(name);
        let data = f.data.lock();
        let off = offset as usize;
        if off >= data.len() {
            return Vec::new();
        }
        let end = data.len().min(off + max);
        let out = data[off..end].to_vec();
        drop(data);
        self.inner.stats.record_log_read(out.len());
        self.inner.latency.read(out.len());
        out
    }

    /// Block until log `name` grows beyond `offset` (with timeout), then
    /// return its new length. Used by RO nodes tailing the REDO log —
    /// this models the "RW broadcasts its up-to-date LSN" notification
    /// (paper §5.1) without a real network.
    pub fn wait_for_growth(&self, name: &str, offset: u64, timeout: std::time::Duration) -> u64 {
        let f = self.log(name);
        let mut data = f.data.lock();
        if (data.len() as u64) > offset {
            return data.len() as u64;
        }
        let _ = f.grew.wait_for(&mut data, timeout);
        data.len() as u64
    }

    // ---- page store ----

    /// Persist a page image under `(space, page)`.
    pub fn write_page(&self, space: &str, page: PageId, bytes: Bytes) {
        self.inner
            .pages
            .write()
            .insert((space.to_string(), page), bytes.clone());
        self.inner.stats.record_page_write(bytes.len());
        self.inner.latency.page_write();
    }

    /// Load a page image.
    pub fn read_page(&self, space: &str, page: PageId) -> Result<Bytes> {
        let out = self
            .inner
            .pages
            .read()
            .get(&(space.to_string(), page))
            .cloned()
            .ok_or_else(|| Error::PolarFs(format!("page {page} not found in space {space}")))?;
        self.inner.stats.record_page_read(out.len());
        self.inner.latency.page_read();
        Ok(out)
    }

    /// Whether a page exists.
    pub fn page_exists(&self, space: &str, page: PageId) -> bool {
        self.inner
            .pages
            .read()
            .contains_key(&(space.to_string(), page))
    }

    // ---- object store (checkpoints) ----

    /// Store an object (overwrite allowed).
    pub fn put_object(&self, key: &str, bytes: Bytes) {
        self.inner
            .objects
            .write()
            .insert(key.to_string(), bytes.clone());
        self.inner.stats.record_object_put(bytes.len());
        self.inner.latency.object_put(bytes.len());
    }

    /// Fetch an object.
    pub fn get_object(&self, key: &str) -> Result<Bytes> {
        let out = self
            .inner
            .objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| Error::PolarFs(format!("object {key} not found")))?;
        self.inner.stats.record_object_get(out.len());
        self.inner.latency.object_get(out.len());
        Ok(out)
    }

    /// List object keys with a given prefix, sorted.
    pub fn list_objects(&self, prefix: &str) -> Vec<String> {
        self.inner
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Delete an object if present.
    pub fn delete_object(&self, key: &str) {
        self.inner.objects.write().remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn append_and_read_back() {
        let fs = PolarFs::instant();
        let o1 = fs.append("redo", b"hello");
        let o2 = fs.append("redo", b" world");
        assert_eq!(o1, 0);
        assert_eq!(o2, 5);
        assert_eq!(fs.read_log("redo", 0, 1024), b"hello world");
        assert_eq!(fs.read_log("redo", 6, 1024), b"world");
        assert_eq!(fs.read_log("redo", 100, 1024), Vec::<u8>::new());
        assert_eq!(fs.log_len("redo"), 11);
    }

    #[test]
    fn fsync_tracks_durable_prefix() {
        let fs = PolarFs::instant();
        fs.append("redo", b"abc");
        assert_eq!(fs.synced_len("redo"), 0);
        fs.fsync("redo");
        assert_eq!(fs.synced_len("redo"), 3);
        fs.append("redo", b"d");
        assert_eq!(fs.synced_len("redo"), 3);
        assert_eq!(fs.stats().fsyncs(), 1);
    }

    #[test]
    fn page_store_roundtrip() {
        let fs = PolarFs::instant();
        let img = Bytes::from_static(b"page-image");
        fs.write_page("t1", PageId(7), img.clone());
        assert!(fs.page_exists("t1", PageId(7)));
        assert!(!fs.page_exists("t2", PageId(7)));
        assert_eq!(fs.read_page("t1", PageId(7)).unwrap(), img);
        assert!(fs.read_page("t1", PageId(8)).is_err());
    }

    #[test]
    fn object_store_roundtrip_and_listing() {
        let fs = PolarFs::instant();
        fs.put_object("ckpt/5/meta", Bytes::from_static(b"m"));
        fs.put_object("ckpt/5/pack0", Bytes::from_static(b"p0"));
        fs.put_object("other", Bytes::from_static(b"x"));
        let keys = fs.list_objects("ckpt/5/");
        assert_eq!(
            keys,
            vec!["ckpt/5/meta".to_string(), "ckpt/5/pack0".to_string()]
        );
        assert_eq!(
            fs.get_object("ckpt/5/pack0").unwrap(),
            Bytes::from_static(b"p0")
        );
        fs.delete_object("ckpt/5/meta");
        assert!(fs.get_object("ckpt/5/meta").is_err());
    }

    #[test]
    fn wait_for_growth_returns_quickly_when_data_present() {
        let fs = PolarFs::instant();
        fs.append("redo", b"xyz");
        let len = fs.wait_for_growth("redo", 0, Duration::from_millis(10));
        assert_eq!(len, 3);
    }

    #[test]
    fn wait_for_growth_wakes_on_append() {
        let fs = PolarFs::instant();
        let fs2 = fs.clone();
        let h = std::thread::spawn(move || fs2.wait_for_growth("redo", 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        fs.append("redo", b"grow");
        assert_eq!(h.join().unwrap(), 4);
    }

    #[test]
    fn epoch_fences_stale_appends() {
        let fs = PolarFs::instant();
        assert_eq!(fs.current_epoch(), 0);
        assert_eq!(fs.append_fenced("redo", b"ok", 0).unwrap(), 0);
        // Promotion bumps the register; the old epoch is fenced out.
        assert_eq!(fs.bump_epoch(), 1);
        let err = fs.append_fenced("redo", b"zombie", 0).unwrap_err();
        assert!(matches!(err, Error::Failover(_)), "got {err}");
        assert!(err.is_retryable());
        // The new writer (and any later epoch) appends fine.
        assert_eq!(fs.append_fenced("redo", b"new", 1).unwrap(), 2);
        assert_eq!(fs.read_log("redo", 0, 64), b"oknew");
        // The fenced append left no trace and counted no I/O latency.
        assert_eq!(fs.log_len("redo"), 5);
    }

    #[test]
    fn heartbeat_is_fenced_by_the_writer_epoch() {
        let fs = PolarFs::instant();
        assert!(fs.lease().age.is_none(), "no beat stamped yet");
        assert_eq!(fs.heartbeat(0).unwrap(), 1);
        assert_eq!(fs.heartbeat(0).unwrap(), 2);
        let info = fs.lease();
        assert_eq!((info.epoch, info.beats), (0, 2));
        assert!(info.age.is_some());
        // Promotion bumps the register; the deposed writer's beats are
        // rejected and leave the register untouched.
        fs.bump_epoch();
        let err = fs.heartbeat(0).unwrap_err();
        assert!(matches!(err, Error::Failover(_)), "got {err}");
        assert_eq!(fs.lease().beats, 2);
        // The new writer stamps fine.
        assert_eq!(fs.heartbeat(1).unwrap(), 3);
        assert_eq!(fs.lease().epoch, 1);
    }

    #[test]
    fn wait_beat_wakes_on_heartbeat() {
        let fs = PolarFs::instant();
        let fs2 = fs.clone();
        let h = std::thread::spawn(move || fs2.wait_beat(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        fs.heartbeat(0).unwrap();
        assert_eq!(h.join().unwrap(), 1);
        // Already-seen beats return immediately.
        assert_eq!(fs.wait_beat(0, Duration::from_millis(1)), 1);
    }

    #[test]
    fn shared_view_across_clones() {
        let fs = PolarFs::instant();
        let other = fs.clone();
        fs.append("redo", b"shared");
        assert_eq!(other.log_len("redo"), 6);
    }
}
