//! I/O accounting for the simulated shared storage.
//!
//! The perturbation experiment (Fig. 11) attributes OLTP throughput loss
//! to *extra fsyncs and log volume* on the commit path; these counters
//! are how the bench harness proves that attribution in the repro.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic I/O counters. All methods are lock-free.
#[derive(Default, Debug)]
pub struct IoStats {
    appends: AtomicU64,
    bytes_appended: AtomicU64,
    fsyncs: AtomicU64,
    log_reads: AtomicU64,
    bytes_log_read: AtomicU64,
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    object_puts: AtomicU64,
    object_gets: AtomicU64,
    object_bytes: AtomicU64,
}

impl IoStats {
    pub(crate) fn record_append(&self, bytes: usize) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_appended
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_log_read(&self, bytes: usize) {
        self.log_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_log_read
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_page_read(&self, _bytes: usize) {
        self.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_page_write(&self, _bytes: usize) {
        self.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_object_put(&self, bytes: usize) {
        self.object_puts.fetch_add(1, Ordering::Relaxed);
        self.object_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_object_get(&self, bytes: usize) {
        self.object_gets.fetch_add(1, Ordering::Relaxed);
        self.object_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of append calls.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Total bytes appended across all logs.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended.load(Ordering::Relaxed)
    }

    /// Number of fsync calls.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Number of log read calls.
    pub fn log_reads(&self) -> u64 {
        self.log_reads.load(Ordering::Relaxed)
    }

    /// Number of page reads served by shared storage (buffer-pool misses).
    pub fn page_reads(&self) -> u64 {
        self.page_reads.load(Ordering::Relaxed)
    }

    /// Number of page write-backs.
    pub fn page_writes(&self) -> u64 {
        self.page_writes.load(Ordering::Relaxed)
    }

    /// Number of checkpoint-object writes.
    pub fn object_puts(&self) -> u64 {
        self.object_puts.load(Ordering::Relaxed)
    }

    /// Number of checkpoint-object reads.
    pub fn object_gets(&self) -> u64 {
        self.object_gets.load(Ordering::Relaxed)
    }

    /// One-line summary for bench output.
    pub fn summary(&self) -> String {
        format!(
            "appends={} bytes={} fsyncs={} log_reads={} page_reads={} page_writes={} obj_puts={} obj_gets={}",
            self.appends(),
            self.bytes_appended(),
            self.fsyncs(),
            self.log_reads(),
            self.page_reads(),
            self.page_writes(),
            self.object_puts(),
            self.object_gets(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::default();
        s.record_append(100);
        s.record_append(28);
        s.record_fsync();
        assert_eq!(s.appends(), 2);
        assert_eq!(s.bytes_appended(), 128);
        assert_eq!(s.fsyncs(), 1);
        assert!(s.summary().contains("fsyncs=1"));
    }
}
