//! Cloud-native cluster topology (paper §3, §6.1, §6.4, §7).
//!
//! A [`Cluster`] is a single-process simulation of the deployment in
//! Fig. 2: one RW node, N RO nodes, and a stateless proxy, all over one
//! shared [`PolarFs`] volume. RO nodes hold dual-format storage (row
//! replica + column indexes) kept fresh by the CALS/2P-COFFER pipeline;
//! the proxy does inter-node routing (read/write splitting with
//! session-count load balancing) and consistency-level enforcement
//! (eventual, or strong via written-LSN ≥ applied-LSN, §6.4); scale-out
//! clones a new RO from the latest checkpoint and lets it catch up
//! (§7 / Fig. 14).

use imci_common::{Error, Result};
use imci_core::ColumnStore;
use imci_replication::{load_checkpoint_pages, take_checkpoint, Pipeline, ReplicationConfig};
use imci_sql::{QueryEngine, QueryResult};
use imci_wal::{LogWriter, PropagationMode};
use parking_lot::RwLock;
use polarfs_sim::{LatencyProfile, PolarFs};
use rowstore::{RecoverOptions, RecoveryReport, RowEngine};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consistency level applied by the proxy (paper §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Route to any RO node immediately.
    #[default]
    Eventual,
    /// Only serve from an RO whose applied LSN ≥ the RW's written LSN
    /// at query arrival (read-your-writes across the cluster).
    Strong,
}

/// Cluster construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of initial RO nodes.
    pub n_ro: usize,
    /// Row-group capacity of column indexes.
    pub group_cap: usize,
    /// RW buffer-pool capacity (pages).
    pub bp_capacity: usize,
    /// Propagation mode (REDO reuse vs Binlog strawman, Fig. 11).
    pub propagation: PropagationMode,
    /// Replication pipeline tuning.
    pub replication: ReplicationConfig,
    /// Shared-storage latency profile.
    pub latency: LatencyProfile,
    /// Row-cost threshold for intra-node routing.
    pub cost_threshold: f64,
    /// Proxy consistency level.
    pub consistency: Consistency,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            n_ro: 1,
            group_cap: 4096,
            bp_capacity: 1 << 20,
            propagation: PropagationMode::ReuseRedo,
            replication: ReplicationConfig::default(),
            latency: LatencyProfile::zero(),
            cost_threshold: 10_000.0,
            consistency: Consistency::Eventual,
        }
    }
}

/// A read-only node: dual-format storage + replication pipeline.
pub struct RoNode {
    /// Node name (e.g. `ro-1`).
    pub name: String,
    /// Row-store replica.
    pub engine: Arc<RowEngine>,
    /// Column indexes.
    pub store: Arc<ColumnStore>,
    /// Per-node query engine (router + both executors).
    pub query: QueryEngine,
    /// The running replication pipeline.
    pub pipeline: Pipeline,
    /// Active proxy sessions (load-balancing signal, §6.1).
    pub sessions: AtomicUsize,
}

impl RoNode {
    /// This node's applied LSN (§6.4).
    pub fn applied_lsn(&self) -> u64 {
        self.pipeline.metrics().applied_lsn()
    }
}

/// The RW node: storage engine + row-only query engine. Behind
/// [`Cluster::rw`]'s lock so crash/recovery/failover can replace it
/// atomically while sessions keep running.
struct RwNode {
    engine: Arc<RowEngine>,
    query: QueryEngine,
}

/// Timing + bookkeeping of one RO→RW promotion (ablation E's metrics).
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Name of the promoted (former RO) node.
    pub promoted: String,
    /// The new writer epoch fencing the deposed RW.
    pub epoch: u64,
    /// In-flight transactions rolled back with logged compensations.
    pub rolled_back_txns: usize,
    /// Individual undecided DMLs undone.
    pub rolled_back_ops: usize,
    /// Time to drain the promoted node's pipeline to the log tail.
    pub drain_time: Duration,
    /// Crash-to-promoted wall time (the paper's seconds-scale claim).
    pub total_time: Duration,
}

/// The simulated PolarDB-IMCI cluster.
pub struct Cluster {
    /// Shared storage volume.
    pub fs: PolarFs,
    /// The RW node, absent between a crash and the next
    /// recovery/promotion (statements then fail with the retryable
    /// [`Error::Failover`] category).
    rw: RwLock<Option<RwNode>>,
    /// RO nodes (the proxy's routing targets).
    pub ros: RwLock<Vec<Arc<RoNode>>>,
    /// Configuration.
    pub config: ClusterConfig,
    next_ro_id: AtomicU64,
    next_ckpt: AtomicU64,
    /// Highest written LSN ever observed — the strong-consistency
    /// fence floor while the writer role is vacant or moving, so reads
    /// acknowledged before a crash stay read-your-writes after it.
    written_floor: AtomicU64,
}

/// Per-statement routing overrides, carried by proxy sessions
/// (`imci_server`): `None` fields inherit the cluster-level defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOpts {
    /// Consistency level for reads (paper §6.4); `None` uses
    /// `ClusterConfig::consistency`.
    pub consistency: Option<Consistency>,
    /// Pin SELECTs to one engine; `None` keeps cost-based routing.
    pub force_engine: Option<imci_sql::EngineChoice>,
}

/// RAII hold on an RO node's active-session counter (the §6.1
/// load-balancing signal). A plain `fetch_add`/`fetch_sub` pair leaks
/// the increment if the query panics in between, permanently skewing
/// routing away from the node; the drop guard decrements on every exit
/// path, panic included.
struct SessionGuard {
    node: Arc<RoNode>,
}

impl SessionGuard {
    fn enter(node: &Arc<RoNode>) -> SessionGuard {
        node.sessions.fetch_add(1, Ordering::Relaxed);
        SessionGuard { node: node.clone() }
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.node.sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Timing breakdown of one scale-out operation (Fig. 14).
#[derive(Debug, Clone)]
pub struct ScaleOutReport {
    /// Node name.
    pub name: String,
    /// Whether a checkpoint was available and used.
    pub from_checkpoint: bool,
    /// Time to build in-memory state (checkpoint load or full replay).
    pub load_time: Duration,
    /// Time to catch up to the RW's written LSN at start.
    pub catchup_time: Duration,
}

impl Cluster {
    /// Boot a cluster: RW + `n_ro` RO nodes over a fresh volume.
    pub fn start(config: ClusterConfig) -> Arc<Cluster> {
        let fs = PolarFs::new(config.latency.clone());
        let log = LogWriter::new(fs.clone(), config.propagation);
        let engine = RowEngine::new_rw(fs.clone(), log, config.bp_capacity);
        let mut query = QueryEngine::row_only(engine.clone());
        query.cost_threshold = config.cost_threshold;
        let cluster = Arc::new(Cluster {
            fs,
            rw: RwLock::new(Some(RwNode { engine, query })),
            ros: RwLock::new(Vec::new()),
            config,
            next_ro_id: AtomicU64::new(1),
            next_ckpt: AtomicU64::new(1),
            written_floor: AtomicU64::new(0),
        });
        for _ in 0..cluster.config.n_ro {
            cluster.scale_out().expect("initial RO boot");
        }
        cluster
    }

    /// The RW node's storage engine; a retryable [`Error::Failover`]
    /// while the writer role is vacant (crashed, not yet recovered).
    pub fn rw(&self) -> Result<Arc<RowEngine>> {
        self.rw
            .read()
            .as_ref()
            .map(|n| n.engine.clone())
            .ok_or_else(|| Error::Failover("RW node is down; retry after recovery".into()))
    }

    /// Crash the RW node: drop every piece of its in-process state —
    /// buffer pool, catalog maps, transaction counters — with no flush
    /// of any kind. Everything durable lives in shared storage, which
    /// is the whole §2.2 point. Returns the old engine handle so tests
    /// can keep a "zombie" alive and prove the epoch fence holds.
    /// Until [`Cluster::recover_rw`] or [`Cluster::failover`] installs
    /// a new writer, write statements fail with the retryable
    /// [`Error::Failover`] category.
    pub fn crash_rw(&self) -> Option<Arc<RowEngine>> {
        let taken = self.rw.write().take();
        // Snapshot the durable-commit floor *after* acquiring the
        // writer lock: a commit in flight when the crash begins holds
        // the read lock, finishes (and acks its client) before the
        // take — so it must be inside the strong-consistency fence for
        // the whole vacancy.
        if let Some(node) = &taken {
            if let Some(log) = node.engine.log() {
                self.written_floor
                    .fetch_max(log.written_lsn().get(), Ordering::SeqCst);
            }
        }
        taken.map(|n| n.engine)
    }

    /// Restart the RW in place: rebuild a writer from the newest
    /// checkpoint (catalog snapshot + row pages) plus REDO replay from
    /// its cursor, roll back whatever never committed, and start
    /// serving again under a bumped writer epoch. See
    /// [`RowEngine::recover`] for the storage-level contract.
    pub fn recover_rw(&self) -> Result<RecoveryReport> {
        if self.rw.read().is_some() {
            return Err(Error::Execution(
                "RW node is alive; crash_rw() before recover_rw()".into(),
            ));
        }
        // The recovered engine gets a replica-sized (effectively
        // unbounded) pool, like RO nodes and unlike the bootstrap RW:
        // replay requires every replayed page to stay resident
        // (`apply_entry` never falls back to shared storage), and the
        // pool's capacity is fixed at engine creation. Deliberate:
        // promoted nodes (former ROs) have the same shape.
        let mut opts = RecoverOptions::from_log_start(self.config.propagation, usize::MAX / 2);
        if let Some(seq) = imci_core::latest_checkpoint(&self.fs) {
            opts.catalog_snapshot = Some(self.fs.get_object(&imci_core::ckpt_catalog_key(seq))?);
            let mut pages = Vec::new();
            for key in self.fs.list_objects(&imci_core::ckpt_rowpages_prefix(seq)) {
                pages.push(self.fs.get_object(&key)?);
            }
            opts.checkpoint_pages = pages;
            opts.start_offset = imci_core::read_meta(&self.fs, seq)?.redo_offset;
        }
        // Rebuild outside the writer lock (sessions fail fast instead
        // of stalling behind a long replay), install atomically after.
        let (engine, report) = RowEngine::recover(self.fs.clone(), opts)?;
        let mut query = QueryEngine::row_only(engine.clone());
        query.cost_threshold = self.config.cost_threshold;
        *self.rw.write() = Some(RwNode { engine, query });
        Ok(report)
    }

    /// Promote the most-caught-up RO node to RW (§7: "an up-to-date RO
    /// can be promoted in seconds"). Sequence:
    ///
    /// 1. depose any current writer and **bump the storage epoch** —
    ///    from here the old RW is a fenced zombie and the log tail is
    ///    final;
    /// 2. pick the RO with the highest applied LSN and remove it from
    ///    the proxy's routing set;
    /// 3. **drain** its pipeline to the log's end: every committed
    ///    transaction applied, every undecided DML captured with its
    ///    undo image;
    /// 4. flip its row replica into writer mode (resumed LSN/TID/VID
    ///    counters, epoch-stamped log writer announcing itself with an
    ///    `EpochBump` record) and roll back the in-flight transactions
    ///    with logged compensations, so sibling ROs converge through
    ///    the log as if a live abort had happened;
    /// 5. re-point the proxy: the node serves as the RW, remaining ROs
    ///    keep tailing the same log.
    ///
    /// The promoted node's column store is dropped with its RO role
    /// (the RW serves row-engine plans only, like the bootstrap RW).
    pub fn failover(&self) -> Result<FailoverReport> {
        let t0 = Instant::now();
        // Depose (no-op if already crashed); the floor snapshot runs
        // under the writer lock for the same last-commit race
        // crash_rw() documents.
        drop(self.crash_rw());
        let epoch = self.fs.bump_epoch();
        let node = {
            let mut ros = self.ros.write();
            if ros.is_empty() {
                return Err(Error::Failover("no RO node available to promote".into()));
            }
            let best = ros
                .iter()
                .enumerate()
                .max_by_key(|(_, n)| n.applied_lsn())
                .map(|(i, _)| i)
                .expect("non-empty");
            ros.remove(best)
        };
        let t_drain = Instant::now();
        let state = node.pipeline.stop_after_drain();
        let drain_time = t_drain.elapsed();
        let log = LogWriter::resume(
            self.fs.clone(),
            self.config.propagation,
            state.last_lsn + 1,
            state.applied_lsn,
        )?;
        node.engine
            .promote_to_writer(log, state.max_tid + 1, state.max_vid);
        let rolled_back_txns = node.engine.rollback_inflight(&state.inflight)?;
        let mut query = QueryEngine::row_only(node.engine.clone());
        query.cost_threshold = self.config.cost_threshold;
        *self.rw.write() = Some(RwNode {
            engine: node.engine.clone(),
            query,
        });
        Ok(FailoverReport {
            promoted: node.name.clone(),
            epoch,
            rolled_back_txns,
            rolled_back_ops: state.inflight.len(),
            drain_time,
            total_time: t0.elapsed(),
        })
    }

    /// Add an RO node (paper §7): load the newest checkpoint if one
    /// exists, otherwise rebuild from the log, then catch up.
    pub fn scale_out(&self) -> Result<ScaleOutReport> {
        let id = self.next_ro_id.fetch_add(1, Ordering::SeqCst);
        let name = format!("ro-{id}");
        let t0 = Instant::now();
        let engine = RowEngine::new_replica(self.fs.clone(), usize::MAX / 2);
        let store = Arc::new(ColumnStore::new(self.config.group_cap));
        let (start_offset, from_checkpoint) = match imci_core::latest_checkpoint(&self.fs) {
            Some(seq) => {
                // Fast start: the checkpoint's catalog snapshot (schemas
                // + catalog version as of its redo cursor), row pages,
                // and column state. DDL after the cursor replays from
                // the log like any other change — no catalog refresh.
                engine.import_catalog(&self.fs.get_object(&imci_core::ckpt_catalog_key(seq))?)?;
                load_checkpoint_pages(&self.fs, seq, &engine)?;
                let meta = imci_core::read_meta(&self.fs, seq)?;
                for tname in engine.table_names() {
                    let rt = engine.table(&tname)?;
                    rt.rebuild_secondaries()?;
                    rt.row_counter
                        .store(rt.tree.count()? as u64, Ordering::SeqCst);
                    if rt.schema.has_column_index() {
                        if let Ok(idx) =
                            imci_core::load_index(&self.fs, seq, &rt.schema, self.config.group_cap)
                        {
                            store.install(idx);
                        } else {
                            store.create_index(&rt.schema);
                        }
                    }
                }
                (meta.redo_offset, true)
            }
            // Cold start: the node boots with an *empty* catalog — the
            // log's DDL records rebuild tables and column indexes in
            // LSN order as the pipeline replays from offset 0.
            None => (0, false),
        };
        let load_time = t0.elapsed();

        let mut repl = self.config.replication.clone();
        repl.start_offset = start_offset;
        let pipeline = Pipeline::start(self.fs.clone(), engine.clone(), store.clone(), repl);

        // Catch up to the RW's current commit point before serving.
        let t1 = Instant::now();
        let target = self.written_lsn();
        if target > 0 {
            pipeline.wait_applied(target, Duration::from_secs(60));
        }
        let catchup_time = t1.elapsed();

        let mut query = QueryEngine::dual(engine.clone(), store.clone());
        query.cost_threshold = self.config.cost_threshold;
        let node = Arc::new(RoNode {
            name: name.clone(),
            engine,
            store,
            query,
            pipeline,
            sessions: AtomicUsize::new(0),
        });
        self.ros.write().push(node);
        Ok(ScaleOutReport {
            name,
            from_checkpoint,
            load_time,
            catchup_time,
        })
    }

    /// Remove the most recently added RO node (scale-in). The node's
    /// replication pipeline is stopped here, unconditionally: sessions
    /// may still hold `Arc`s to the node (their in-flight queries keep
    /// working against its frozen state), but its threads must not keep
    /// tailing the log after the node left the routing set.
    pub fn scale_in(&self) -> Option<String> {
        let node = self.ros.write().pop()?;
        node.pipeline.stop();
        Some(node.name.clone())
    }

    /// RW's durable commit LSN ("written LSN", §6.4). While the writer
    /// role is vacant this returns the highest value ever observed, so
    /// strong reads keep fencing on everything acknowledged before the
    /// crash.
    pub fn written_lsn(&self) -> u64 {
        let current = self
            .rw
            .read()
            .as_ref()
            .and_then(|n| n.engine.log())
            .map(|l| l.written_lsn().get())
            .unwrap_or(0);
        let floor = self.written_floor.fetch_max(current, Ordering::SeqCst);
        current.max(floor)
    }

    /// Take a checkpoint covering the current log prefix (the RO-leader
    /// duty of §7; see DESIGN.md for the quiescing substitution).
    pub fn checkpoint_now(&self) -> Result<u64> {
        let seq = self.next_ckpt.fetch_add(1, Ordering::SeqCst);
        take_checkpoint(&self.fs, seq, None, self.config.group_cap)?;
        Ok(seq)
    }

    /// Pick the RO node with the fewest active sessions (proxy
    /// load-balancing, §6.1), honoring the cluster's default
    /// consistency level.
    pub fn route_ro(&self) -> Result<Arc<RoNode>> {
        self.route_ro_with(self.config.consistency)
    }

    /// Like [`Cluster::route_ro`] but with an explicit consistency
    /// level — the per-session enforcement point of §6.4.
    pub fn route_ro_with(&self, consistency: Consistency) -> Result<Arc<RoNode>> {
        let ros = self.ros.read();
        if ros.is_empty() {
            return Err(Error::Execution("no RO nodes available".into()));
        }
        let target = self.written_lsn();
        let eligible: Vec<&Arc<RoNode>> = match consistency {
            Consistency::Eventual => ros.iter().collect(),
            Consistency::Strong => ros.iter().filter(|n| n.applied_lsn() >= target).collect(),
        };
        let pick = |nodes: &[&Arc<RoNode>]| -> Arc<RoNode> {
            nodes
                .iter()
                .min_by_key(|n| n.sessions.load(Ordering::Relaxed))
                .map(|n| Arc::clone(n))
                .expect("non-empty")
        };
        if !eligible.is_empty() {
            return Ok(pick(&eligible));
        }
        // Strong consistency with lagging ROs: park (condvar, not a
        // spin — a busy-wait here burns a core per blocked read) until
        // one catches up.
        let node = pick(&ros.iter().collect::<Vec<_>>());
        drop(ros);
        if !node.pipeline.wait_applied(target, Duration::from_secs(30)) {
            return Err(Error::Execution("strong consistency wait timed out".into()));
        }
        Ok(node)
    }

    /// Execute one SQL statement through the proxy: SELECTs go to an RO
    /// node, everything else to the RW node (§6.1 inter-node routing,
    /// via the rough classifier + full parse).
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_opts(sql, ExecOpts::default())
    }

    /// [`Cluster::execute`] with per-statement overrides. This is what
    /// proxy sessions (`imci_server`) call: each session carries its
    /// own consistency level and engine pin without touching
    /// cluster-global or node-global state.
    pub fn execute_opts(&self, sql: &str, opts: ExecOpts) -> Result<QueryResult> {
        if imci_sql::is_read_only(sql) && !self.ros.read().is_empty() {
            let consistency = opts.consistency.unwrap_or(self.config.consistency);
            let node = self.route_ro_with(consistency)?;
            let _session = SessionGuard::enter(&node);
            return self.execute_on_ro(&node, sql, opts);
        }
        self.execute_rw(sql)
    }

    /// Execute a batch of statements in one proxy call — the service
    /// tier's `BATCH` fast path. Inter-node routing is resolved **once
    /// per batch** (one `route_ro_with`, one session-counter update)
    /// instead of once per statement; per-statement errors are returned
    /// in place so one bad statement doesn't void the rest.
    ///
    /// Consistency: under `Strong`, each read in the batch still waits
    /// for the chosen RO to apply every write committed so far —
    /// including writes earlier in the same batch — so read-your-writes
    /// holds within a batch.
    pub fn execute_many(
        &self,
        stmts: &[impl AsRef<str>],
        opts: ExecOpts,
    ) -> Vec<Result<QueryResult>> {
        let consistency = opts.consistency.unwrap_or(self.config.consistency);
        let mut out = Vec::with_capacity(stmts.len());
        // One routing decision (and one session-counter hold) for all
        // reads in the batch.
        let mut ro: Option<SessionGuard> = None;
        for sql in stmts {
            let sql = sql.as_ref();
            if imci_sql::is_read_only(sql) && !self.ros.read().is_empty() {
                let resolved = match &ro {
                    Some(guard) => Ok(guard.node.clone()),
                    None => self
                        .route_ro_with(consistency)
                        .inspect(|node| ro = Some(SessionGuard::enter(node))),
                };
                out.push(resolved.and_then(|node| {
                    // Re-arm the strong-consistency fence: writes earlier
                    // in this batch advanced the written LSN after the
                    // route was resolved.
                    if consistency == Consistency::Strong
                        && !node
                            .pipeline
                            .wait_applied(self.written_lsn(), Duration::from_secs(30))
                    {
                        return Err(Error::Execution("strong consistency wait timed out".into()));
                    }
                    self.execute_on_ro(&node, sql, opts)
                }));
            } else {
                out.push(self.execute_rw(sql));
            }
        }
        out
    }

    /// Run one read on a specific RO node (routing already done). No
    /// catalog-miss retry: the RO catalog is versioned with the log, so
    /// a table the node doesn't know simply does not exist at its
    /// applied LSN — strong-consistency reads fence on DDL commits and
    /// therefore always see the catalog their session expects.
    fn execute_on_ro(&self, node: &RoNode, sql: &str, opts: ExecOpts) -> Result<QueryResult> {
        node.query.execute_forced(sql, opts.force_engine)
    }

    /// Run one write/DDL statement on the RW node. DDL (CREATE / DROP /
    /// ALTER) needs no per-replica fan-out: it ships through the REDO
    /// stream as a versioned record and every RO applies it in LSN
    /// order with the data changes. With the writer role vacant
    /// (crash/failover window) the statement fails fast with the
    /// retryable failover category instead of stalling.
    fn execute_rw(&self, sql: &str) -> Result<QueryResult> {
        let rw = self.rw.read();
        match rw.as_ref() {
            Some(node) => node.query.execute(sql),
            None => Err(Error::Failover(
                "RW node is down; retry after recovery".into(),
            )),
        }
    }

    /// Block until every RO has applied the RW's current written LSN.
    pub fn wait_sync(&self, timeout: Duration) -> bool {
        let target = self.written_lsn();
        let deadline = Instant::now() + timeout;
        let nodes: Vec<Arc<RoNode>> = self.ros.read().iter().cloned().collect();
        for ro in nodes {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if !ro.pipeline.wait_applied(target, remaining) {
                return false;
            }
        }
        true
    }

    /// Visibility delay measurement: commit a marker transaction on RW
    /// and time how long until a chosen RO node has applied it (the VD
    /// metric of Figs. 12/16).
    pub fn measure_visibility_delay(&self) -> Result<Duration> {
        let ro = self.route_ro()?;
        let rw = self.rw()?;
        let txn = rw.begin();
        let t0 = Instant::now();
        rw.commit(txn)?;
        let target = self.written_lsn();
        if !ro.pipeline.wait_applied(target, Duration::from_secs(10)) {
            return Err(Error::Execution("VD wait timed out".into()));
        }
        Ok(t0.elapsed())
    }

    /// Stop all RO pipelines (drops the nodes). Pipelines are stopped
    /// explicitly — not via `Arc::try_unwrap`, which fails (and used to
    /// silently leak running threads) whenever a session still holds a
    /// node.
    pub fn shutdown(&self) {
        let nodes: Vec<Arc<RoNode>> = self.ros.write().drain(..).collect();
        for node in &nodes {
            node.pipeline.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::Value;
    use imci_sql::{EngineChoice, Statement};

    const DDL: &str = "CREATE TABLE demo (
        id INT NOT NULL, grp INT, val DOUBLE, note VARCHAR(32),
        PRIMARY KEY(id), KEY grp_idx(grp),
        KEY COLUMN_INDEX(id, grp, val, note))";

    fn small_cluster() -> Arc<Cluster> {
        Cluster::start(ClusterConfig {
            group_cap: 64,
            replication: ReplicationConfig {
                batch_txns: 4,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn end_to_end_htap_path() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..300 {
            c.execute(&format!(
                "INSERT INTO demo VALUES ({i}, {}, {}, 'n{}')",
                i % 3,
                i as f64 * 0.5,
                i % 5
            ))
            .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)), "ROs must catch up");
        // Analytical query routes to RO; force column for determinism.
        c.ros.read()[0].query.set_force(Some(EngineChoice::Column));
        let res = c
            .execute("SELECT grp, COUNT(*), SUM(val) FROM demo GROUP BY grp ORDER BY grp")
            .unwrap();
        assert_eq!(res.rows.len(), 3);
        assert_eq!(res.rows[0][1], Value::Int(100));
        assert_eq!(res.engine, EngineChoice::Column);
        // Point query stays on the row path.
        c.ros.read()[0].query.set_force(None);
        let res = c.execute("SELECT note FROM demo WHERE id = 7").unwrap();
        assert_eq!(res.engine, EngineChoice::Row);
        assert_eq!(res.rows[0][0], Value::Str("n2".into()));
        c.shutdown();
    }

    #[test]
    fn updates_and_deletes_propagate() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..50 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'x')"))
                .unwrap();
        }
        c.execute("UPDATE demo SET val = 99.0 WHERE id = 10")
            .unwrap();
        c.execute("DELETE FROM demo WHERE id = 20").unwrap();
        assert!(c.wait_sync(Duration::from_secs(20)));
        let res = c.execute("SELECT COUNT(*), MAX(val) FROM demo").unwrap();
        assert_eq!(res.rows[0][0], Value::Int(49));
        assert_eq!(res.rows[0][1], Value::Double(99.0));
        c.shutdown();
    }

    #[test]
    fn strong_consistency_reads_own_writes() {
        let mut cfg = ClusterConfig {
            group_cap: 64,
            ..Default::default()
        };
        cfg.consistency = Consistency::Strong;
        let c = Cluster::start(cfg);
        c.execute(DDL).unwrap();
        for i in 0..200 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 1, 1.0, 'y')"))
                .unwrap();
            // Immediately readable: strong consistency must wait for the
            // RO to apply this write.
            if i % 50 == 0 {
                let res = c
                    .execute(&format!("SELECT id FROM demo WHERE id = {i}"))
                    .unwrap();
                assert_eq!(res.rows.len(), 1, "write {i} must be visible");
            }
        }
        c.shutdown();
    }

    #[test]
    fn scale_out_uses_checkpoint_and_serves() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..500 {
            c.execute(&format!(
                "INSERT INTO demo VALUES ({i}, {}, 2.0, 'z')",
                i % 7
            ))
            .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        c.checkpoint_now().unwrap();
        // More traffic after the checkpoint.
        for i in 500..600 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 2.0, 'z')"))
                .unwrap();
        }
        let report = c.scale_out().unwrap();
        assert!(report.from_checkpoint, "checkpoint must be used");
        assert_eq!(c.ros.read().len(), 2);
        // The new node answers queries with fresh data.
        let node = c.ros.read()[1].clone();
        node.query.set_force(Some(EngineChoice::Column));
        let (res, _) = node
            .query
            .execute_select(
                &match imci_sql::parse("SELECT COUNT(*) FROM demo").unwrap() {
                    Statement::Select(s) => *s,
                    _ => unreachable!(),
                },
            )
            .unwrap();
        assert_eq!(res.rows[0][0], Value::Int(600));
        c.shutdown();
    }

    #[test]
    fn alter_add_column_index_online() {
        let c = small_cluster();
        c.execute("CREATE TABLE plain (id INT NOT NULL, v INT, PRIMARY KEY(id))")
            .unwrap();
        for i in 0..100 {
            c.execute(&format!("INSERT INTO plain VALUES ({i}, {i})"))
                .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        c.execute("ALTER TABLE plain ADD COLUMN INDEX (id, v)")
            .unwrap();
        // The ALTER ships as a DDL record whose commit advances the
        // written LSN, so wait_sync covers the RO-side index rebuild.
        assert!(c.wait_sync(Duration::from_secs(20)));
        let node = c.ros.read()[0].clone();
        node.query.set_force(Some(EngineChoice::Column));
        let res = c.execute("SELECT SUM(v) FROM plain").unwrap();
        assert_eq!(res.rows[0][0], Value::Int((0..100).sum::<i64>()));
        assert_eq!(
            res.engine,
            EngineChoice::Column,
            "replicated ALTER must make the column index servable"
        );
        c.shutdown();
    }

    #[test]
    fn ddl_immediately_visible_on_every_ro_node() {
        // Regression for two lazy-refresh races:
        // (1) the pipeline's mid-apply table pickup could drop committed
        //     DMLs for a table created after node start;
        // (2) `execute_opts`'s catalog-miss retry refreshed only the
        //     routed node, leaving sibling replicas stale until they
        //     happened to be routed a failing query.
        // With DDL in the log, a strong read after CREATE;INSERT must
        // succeed on whichever of the 3 RO nodes it round-robins to,
        // with no retry path in the proxy at all.
        let c = Cluster::start(ClusterConfig {
            n_ro: 3,
            group_cap: 64,
            ..Default::default()
        });
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            force_engine: None,
        };
        for round in 0..5 {
            let t = format!("tenant_{round}");
            c.execute(&format!(
                "CREATE TABLE {t} (id INT NOT NULL, v INT, PRIMARY KEY(id),
                 KEY COLUMN_INDEX(id, v))"
            ))
            .unwrap();
            c.execute(&format!("INSERT INTO {t} VALUES (1, {round})"))
                .unwrap();
            // Round-robin immediately after the DDL: every RO must
            // serve the row (strong reads spread across the
            // least-loaded node, and all three see the DDL in order).
            for _ in 0..6 {
                let res = c
                    .execute_opts(&format!("SELECT v FROM {t} WHERE id = 1"), opts)
                    .unwrap();
                assert_eq!(res.rows.len(), 1, "round {round}: row must be visible");
                assert_eq!(res.rows[0][0], Value::Int(round));
            }
            // Every node individually (not just the routed one). The
            // siblings converge through the log — the old design left
            // them stale until they happened to be routed a *failing*
            // query — so after a sync they must all know the table.
            assert!(c.wait_sync(Duration::from_secs(20)));
            for ro in c.ros.read().iter() {
                assert!(
                    ro.engine.table(&t).is_ok(),
                    "round {round}: {} must know {t}",
                    ro.name
                );
                assert_eq!(ro.engine.row_count(&t).unwrap(), 1, "{}", ro.name);
            }
        }
        for ro in c.ros.read().iter() {
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        c.shutdown();
    }

    #[test]
    fn drop_table_errors_on_every_ro_node() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 64,
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 0, 1.0, 'x')")
            .unwrap();
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            force_engine: None,
        };
        assert_eq!(
            c.execute_opts("SELECT id FROM demo WHERE id = 1", opts)
                .unwrap()
                .rows
                .len(),
            1
        );
        c.execute("DROP TABLE demo").unwrap();
        // The drop's commit advances the written LSN, so strong reads
        // fence on it: after the drop every RO must report the table
        // gone (a catalog error), never stale rows.
        assert!(c.wait_sync(Duration::from_secs(20)));
        for _ in 0..4 {
            let err = c
                .execute_opts("SELECT id FROM demo WHERE id = 1", opts)
                .unwrap_err();
            assert!(matches!(err, Error::Catalog(_)), "got {err}");
        }
        for ro in c.ros.read().iter() {
            assert!(ro.engine.table("demo").is_err(), "{}", ro.name);
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        // A write to the dropped table fails on the RW too.
        assert!(c
            .execute("INSERT INTO demo VALUES (2, 0, 1.0, 'y')")
            .is_err());
        c.shutdown();
    }

    #[test]
    fn commented_and_parenthesized_selects_route_to_ro() {
        // Regression: `is_read_only` used to look only at the first six
        // bytes, so a SELECT behind a comment or paren was misrouted to
        // the RW node — bypassing RO load balancing and FORCE_ENGINE.
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..50 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'x')"))
                .unwrap();
        }
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            // The RW node has no column store: a result on the COLUMN
            // engine proves the statement ran on an RO node.
            force_engine: Some(EngineChoice::Column),
        };
        for sql in [
            "-- comment\nSELECT COUNT(*) FROM demo",
            "/* hint */ SELECT COUNT(*) FROM demo",
            "(SELECT COUNT(*) FROM demo)",
        ] {
            let res = c.execute_opts(sql, opts).unwrap();
            assert_eq!(res.rows[0][0], Value::Int(50), "{sql}");
            assert_eq!(res.engine, EngineChoice::Column, "{sql} must hit an RO");
        }
        c.shutdown();
    }

    #[test]
    fn execute_many_batches_reads_and_writes() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        let stmts: Vec<String> = (0..20)
            .map(|i| format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'b')"))
            .chain(std::iter::once("SELECT COUNT(*) FROM demo".to_string()))
            .chain(std::iter::once("SELECT bogus FROM nowhere".to_string()))
            .chain(std::iter::once("SELECT MAX(id) FROM demo".to_string()))
            .collect();
        let results = c.execute_many(
            &stmts,
            ExecOpts {
                consistency: Some(Consistency::Strong),
                force_engine: None,
            },
        );
        assert_eq!(results.len(), 23);
        for r in &results[..20] {
            assert_eq!(r.as_ref().unwrap().affected, 1);
        }
        // Read-your-writes within the batch: the count sees all 20
        // inserts issued moments earlier in the same call.
        assert_eq!(results[20].as_ref().unwrap().rows[0][0], Value::Int(20));
        assert!(results[21].is_err(), "bad statement errors in place");
        assert_eq!(results[22].as_ref().unwrap().rows[0][0], Value::Int(19));
        c.shutdown();
    }

    #[test]
    fn session_counters_return_to_zero() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 0, 1.0, 'x')")
            .unwrap();
        for _ in 0..10 {
            let _ = c.execute("SELECT COUNT(*) FROM demo");
            // Errors (parse failures on the RO) must not leak the
            // session count either.
            let _ = c.execute("SELECT FROM demo WHERE");
        }
        let _ = c.execute_many(
            &["SELECT COUNT(*) FROM demo", "SELECT * FROM missing"],
            ExecOpts::default(),
        );
        for ro in c.ros.read().iter() {
            assert_eq!(ro.sessions.load(Ordering::SeqCst), 0);
        }
        c.shutdown();
    }

    #[test]
    fn scale_in_stops_pipeline_with_live_arcs() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        c.scale_out().unwrap();
        // A "session" still holds the node when it is scaled in.
        let held = c.ros.read().last().unwrap().clone();
        let before = held.applied_lsn();
        assert!(c.scale_in().is_some());
        // The pipeline was stopped even though `held` kept the Arc
        // alive: new writes must no longer advance its applied LSN.
        for i in 100..160 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'x')"))
                .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            held.applied_lsn(),
            before,
            "stopped pipeline must not apply"
        );
        c.shutdown();
    }

    #[test]
    fn crash_then_recover_restores_every_committed_transaction() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..300 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'a')"))
                .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        c.checkpoint_now().unwrap();
        // Post-checkpoint traffic: must come back from REDO replay.
        for i in 300..400 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 1, 2.0, 'b')"))
                .unwrap();
        }
        c.execute("UPDATE demo SET val = 99.0 WHERE id = 7")
            .unwrap();
        c.execute("DELETE FROM demo WHERE id = 8").unwrap();
        // An in-flight transaction dies with the node.
        let rw = c.rw().unwrap();
        let mut doomed = rw.begin();
        rw.insert(
            &mut doomed,
            "demo",
            vec![
                Value::Int(9999),
                Value::Int(0),
                Value::Double(0.0),
                Value::Null,
            ],
        )
        .unwrap();
        let written_before = c.written_lsn();

        let zombie = c.crash_rw().expect("RW was up");
        // Writes fail fast with the retryable category while down...
        let err = c
            .execute("INSERT INTO demo VALUES (400, 0, 1.0, 'x')")
            .unwrap_err();
        assert!(matches!(err, Error::Failover(_)), "got {err}");
        assert!(err.is_retryable());
        // ...but reads keep serving from the ROs, fencing on the
        // pre-crash written LSN.
        assert!(c.written_lsn() >= written_before);
        // Commit-gated visibility lives on the column side (the row
        // replica physically holds CALS-shipped uncommitted rows), so
        // read through the column engine.
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            force_engine: Some(EngineChoice::Column),
        };
        let res = c.execute_opts("SELECT COUNT(*) FROM demo", opts).unwrap();
        assert_eq!(res.rows[0][0], Value::Int(399));

        let report = c.recover_rw().unwrap();
        assert!(report.from_checkpoint, "newest checkpoint must seed");
        assert_eq!(report.rolled_back_txns, 1, "the in-flight txn");
        // Every committed transaction restored, none of the
        // uncommitted ones.
        let rec = c.rw().unwrap();
        assert_eq!(rec.row_count("demo").unwrap(), 399);
        assert_eq!(
            rec.get_row("demo", 7).unwrap().unwrap().values[2],
            Value::Double(99.0)
        );
        assert!(rec.get_row("demo", 8).unwrap().is_none());
        assert!(rec.get_row("demo", 9999).unwrap().is_none());
        // The recovered RW serves writes; the zombie is fenced.
        c.execute("INSERT INTO demo VALUES (400, 0, 1.0, 'x')")
            .unwrap();
        let mut ztxn = zombie.begin();
        let zerr = zombie
            .insert(
                &mut ztxn,
                "demo",
                vec![
                    Value::Int(7777),
                    Value::Int(0),
                    Value::Double(0.0),
                    Value::Null,
                ],
            )
            .unwrap_err();
        assert!(zerr.is_retryable(), "zombie append must be fenced");
        // ROs tail through the crash: compensations + new writes land.
        assert!(c.wait_sync(Duration::from_secs(20)));
        for ro in c.ros.read().iter() {
            assert_eq!(ro.engine.row_count("demo").unwrap(), 400, "{}", ro.name);
            assert!(ro.engine.get_row("demo", 9999).unwrap().is_none());
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        c.shutdown();
    }

    #[test]
    fn failover_promotes_an_ro_and_fences_the_old_rw() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 64,
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        for i in 0..200 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'a')"))
                .unwrap();
        }
        // In flight at the crash: shipped by CALS, must be rolled back
        // by the promotion on every surviving node.
        let rw = c.rw().unwrap();
        let mut doomed = rw.begin();
        rw.update(
            &mut doomed,
            "demo",
            5,
            vec![
                Value::Int(5),
                Value::Int(0),
                Value::Double(-1.0),
                Value::Null,
            ],
        )
        .unwrap();
        rw.insert(
            &mut doomed,
            "demo",
            vec![
                Value::Int(5000),
                Value::Int(0),
                Value::Double(0.0),
                Value::Null,
            ],
        )
        .unwrap();

        let zombie = c.crash_rw().expect("RW was up");
        let report = c.failover().unwrap();
        assert!(report.promoted.starts_with("ro-"), "{}", report.promoted);
        assert_eq!(report.rolled_back_txns, 1);
        assert_eq!(report.rolled_back_ops, 2);
        assert_eq!(c.ros.read().len(), 1, "promoted node left the RO set");

        // The committed prefix survived, the in-flight txn did not.
        let new_rw = c.rw().unwrap();
        assert_eq!(new_rw.row_count("demo").unwrap(), 200);
        assert_eq!(
            new_rw.get_row("demo", 5).unwrap().unwrap().values[2],
            Value::Double(1.0),
            "in-flight update rolled back on the promoted node"
        );
        assert!(new_rw.get_row("demo", 5000).unwrap().is_none());

        // The deposed RW can never append again (epoch fence).
        let mut ztxn = zombie.begin();
        assert!(zombie
            .insert(
                &mut ztxn,
                "demo",
                vec![
                    Value::Int(6000),
                    Value::Int(0),
                    Value::Double(0.0),
                    Value::Null
                ],
            )
            .unwrap_err()
            .is_retryable());

        // The cluster serves writes + strong reads through the new RW;
        // the surviving RO converges through the same log, including
        // the promotion's compensation records.
        c.execute("INSERT INTO demo VALUES (201, 1, 2.0, 'post')")
            .unwrap();
        assert!(c.wait_sync(Duration::from_secs(20)));
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            force_engine: None,
        };
        let res = c.execute_opts("SELECT COUNT(*) FROM demo", opts).unwrap();
        assert_eq!(res.rows[0][0], Value::Int(201));
        for ro in c.ros.read().iter() {
            assert_eq!(ro.engine.row_count("demo").unwrap(), 201, "{}", ro.name);
            assert_eq!(
                ro.engine.get_row("demo", 5).unwrap().unwrap().values[2],
                Value::Double(1.0),
                "{}: rollback replicated",
                ro.name
            );
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        c.shutdown();
    }

    #[test]
    fn failover_with_no_ro_reports_failover_error() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 0,
            group_cap: 64,
            ..Default::default()
        });
        c.execute("CREATE TABLE solo (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        c.crash_rw();
        let err = c.failover().unwrap_err();
        assert!(matches!(err, Error::Failover(_)), "got {err}");
        // Recovery still brings the cluster back.
        c.recover_rw().unwrap();
        c.execute("INSERT INTO solo VALUES (1)").unwrap();
        c.shutdown();
    }

    #[test]
    fn repeated_failovers_keep_epochs_monotonic() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 3,
            group_cap: 64,
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        let mut last_epoch = 0;
        for round in 0..3 {
            c.execute(&format!("INSERT INTO demo VALUES ({round}, 0, 1.0, 'r')"))
                .unwrap();
            c.crash_rw();
            let report = c.failover().unwrap();
            assert!(report.epoch > last_epoch, "epochs strictly increase");
            last_epoch = report.epoch;
        }
        assert_eq!(c.ros.read().len(), 0, "each round consumed one RO");
        // All three rounds' writes survived three ownership changes.
        let res = c.execute("SELECT COUNT(*) FROM demo").unwrap();
        assert_eq!(res.rows[0][0], Value::Int(3));
        c.shutdown();
    }

    #[test]
    fn visibility_delay_is_measurable() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 1, 1.0, 'a')")
            .unwrap();
        let vd = c.measure_visibility_delay().unwrap();
        assert!(vd < Duration::from_secs(5));
        c.shutdown();
    }
}
