//! Cloud-native cluster topology (paper §3, §6.1, §6.4, §7).
//!
//! A [`Cluster`] is a single-process simulation of the deployment in
//! Fig. 2: one RW node, N RO nodes, and a stateless proxy, all over one
//! shared [`PolarFs`] volume. RO nodes hold dual-format storage (row
//! replica + column indexes) kept fresh by the CALS/2P-COFFER pipeline;
//! the proxy does inter-node routing (read/write splitting with
//! session-count load balancing) and consistency-level enforcement
//! (eventual, or strong via written-LSN ≥ applied-LSN, §6.4); scale-out
//! clones a new RO from the latest checkpoint and lets it catch up
//! (§7 / Fig. 14).

use imci_common::{Error, Result};
use imci_core::ColumnStore;
use imci_replication::{load_checkpoint_pages, take_checkpoint, Pipeline, ReplicationConfig};
use imci_sql::{QueryEngine, QueryResult};
use imci_wal::{LogWriter, PropagationMode};
use parking_lot::{Condvar, Mutex, RwLock};
use polarfs_sim::{LatencyProfile, PolarFs};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rowstore::{RecoverOptions, RecoveryReport, RowEngine};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Consistency level applied by the proxy (paper §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Route to any RO node immediately.
    #[default]
    Eventual,
    /// Only serve from an RO whose applied LSN ≥ the RW's written LSN
    /// at query arrival (read-your-writes across the cluster).
    Strong,
}

/// Cluster construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of initial RO nodes.
    pub n_ro: usize,
    /// Row-group capacity of column indexes.
    pub group_cap: usize,
    /// RW buffer-pool capacity (pages).
    pub bp_capacity: usize,
    /// Propagation mode (REDO reuse vs Binlog strawman, Fig. 11).
    pub propagation: PropagationMode,
    /// Replication pipeline tuning.
    pub replication: ReplicationConfig,
    /// Shared-storage latency profile.
    pub latency: LatencyProfile,
    /// Row-cost threshold for intra-node routing.
    pub cost_threshold: f64,
    /// Proxy consistency level.
    pub consistency: Consistency,
    /// How often the RW stamps the shared-storage liveness lease.
    pub heartbeat_interval: Duration,
    /// Start the cluster supervisor (automatic failure detection +
    /// promotion) with this config; `None` leaves failover manual.
    pub supervisor: Option<SupervisorConfig>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            n_ro: 1,
            group_cap: 4096,
            bp_capacity: 1 << 20,
            propagation: PropagationMode::ReuseRedo,
            replication: ReplicationConfig::default(),
            latency: LatencyProfile::zero(),
            cost_threshold: 10_000.0,
            consistency: Consistency::Eventual,
            heartbeat_interval: Duration::from_millis(20),
            supervisor: None,
        }
    }
}

/// Tuning for the cluster supervisor (automatic failure detection).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Lease expiry: no accepted heartbeat for this long means the
    /// writer is presumed dead and promotion is triggered.
    pub lease_timeout: Duration,
    /// Upper bound of the random extra wait added to every expiry
    /// check. Jitter decorrelates detection across supervisors (and,
    /// with the arming rule, gives a slow-but-alive writer one more
    /// beat's worth of grace before it is deposed).
    pub jitter: Duration,
    /// Seed for the jitter RNG — detection schedules are deterministic
    /// per seed, which the crash-schedule proptests rely on.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            lease_timeout: Duration::from_millis(150),
            jitter: Duration::from_millis(40),
            seed: 0x1ec0_5eed,
        }
    }
}

/// A read-only node: dual-format storage + replication pipeline.
pub struct RoNode {
    /// Node name (e.g. `ro-1`).
    pub name: String,
    /// Row-store replica.
    pub engine: Arc<RowEngine>,
    /// Column indexes.
    pub store: Arc<ColumnStore>,
    /// Per-node query engine (router + both executors).
    pub query: QueryEngine,
    /// The running replication pipeline.
    pub pipeline: Pipeline,
    /// Active proxy sessions (load-balancing signal, §6.1).
    pub sessions: AtomicUsize,
}

impl RoNode {
    /// This node's applied LSN (§6.4).
    pub fn applied_lsn(&self) -> u64 {
        self.pipeline.metrics().applied_lsn()
    }
}

/// The RW node: storage engine + query engine. Behind [`Cluster::rw`]'s
/// lock so crash/recovery/failover can replace it atomically while
/// sessions keep running. A bootstrap/recovered RW is row-only; a
/// *promoted* RW carries a column attachment and serves dual-format
/// plans (full HTAP after failover).
struct RwNode {
    engine: Arc<RowEngine>,
    query: QueryEngine,
    /// IMCI column half of a promoted writer; `None` on row-only
    /// writers. Kept as a field so its pipeline stops when the node is
    /// crashed or replaced.
    column: Option<ColumnAttachment>,
    /// Liveness stamper; dropping the node (crash) stops the beats,
    /// which is exactly how a real process death looks to the lease.
    _heartbeat: Option<Heartbeat>,
}

/// The promoted writer's column replica. Phase-1 of the replication
/// pipeline derives column operations from *applying* REDO to a row
/// replica — the writer's own engine would idempotency-skip its
/// already-applied pages and emit nothing — so a shadow row replica
/// tails the shared log and feeds the column store, continuously
/// covering the writer's own commits. This is the promoted node
/// "re-registering with the replication pipeline as the new source".
struct ColumnAttachment {
    /// Shadow row replica (pipeline plumbing only, never queried).
    _replica: Arc<RowEngine>,
    /// Column store backing the writer's dual query engine.
    _store: Arc<ColumnStore>,
    pipeline: Pipeline,
}

/// A freshly booted CALS follower ([`Cluster::boot_follower`]): the
/// building block of both an RO node and a promoted writer's column
/// attachment.
struct Follower {
    engine: Arc<RowEngine>,
    store: Arc<ColumnStore>,
    pipeline: Pipeline,
    from_checkpoint: bool,
}

/// Background thread stamping [`PolarFs::heartbeat`] with the writer's
/// epoch every `interval`. Stops when dropped (condvar, no polling
/// sleep) or as soon as a beat is fenced — a deposed writer goes
/// silent instead of spamming rejected beats.
struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(fs: PolarFs, epoch: u64, interval: Duration) -> Heartbeat {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("rw-heartbeat".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                let mut stopped = lock.lock();
                loop {
                    if *stopped || fs.heartbeat(epoch).is_err() {
                        return;
                    }
                    let _ = cv.wait_for(&mut stopped, interval);
                }
            })
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Timing + bookkeeping of one RO→RW promotion (ablation E's metrics).
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Name of the promoted (former RO) node.
    pub promoted: String,
    /// The new writer epoch fencing the deposed RW.
    pub epoch: u64,
    /// In-flight transactions rolled back with logged compensations.
    pub rolled_back_txns: usize,
    /// Individual undecided DMLs undone.
    pub rolled_back_ops: usize,
    /// Time to drain the promoted node's pipeline to the log tail.
    pub drain_time: Duration,
    /// Time to rebuild the promoted node's column replica (checkpoint
    /// load + REDO tail catch-up). Row service resumes *before* this:
    /// it overlaps with live write traffic.
    pub column_rebuild_time: Duration,
    /// Crash-to-promoted wall time (the paper's seconds-scale claim).
    pub total_time: Duration,
}

/// The simulated PolarDB-IMCI cluster.
pub struct Cluster {
    /// Shared storage volume.
    pub fs: PolarFs,
    /// The RW node, absent between a crash and the next
    /// recovery/promotion (statements then fail with the retryable
    /// [`Error::Failover`] category).
    rw: RwLock<Option<RwNode>>,
    /// RO nodes (the proxy's routing targets).
    pub ros: RwLock<Vec<Arc<RoNode>>>,
    /// Configuration.
    pub config: ClusterConfig,
    next_ro_id: AtomicU64,
    next_ckpt: AtomicU64,
    /// Highest written LSN ever observed — the strong-consistency
    /// fence floor while the writer role is vacant or moving, so reads
    /// acknowledged before a crash stay read-your-writes after it.
    written_floor: AtomicU64,
    /// Gate + condvar for [`Cluster::wait_for_writer`]: notified every
    /// time a writer is installed (boot, recovery, promotion).
    writer_gate: Mutex<()>,
    writer_cv: Condvar,
    /// Supervisor thread handle (when running).
    supervisor: Mutex<Option<Supervisor>>,
    /// Promotions triggered by the supervisor (not by a caller).
    auto_failovers: AtomicU64,
    /// Detection latency of the last auto-failover: ms from the last
    /// accepted heartbeat to the promotion trigger.
    detection_ms_last: AtomicU64,
    /// Supervisor state code (see [`Cluster::supervisor_state`]).
    supervisor_state: AtomicU64,
    /// Serializes promotions: the supervisor and a manual caller must
    /// not race two concurrent [`Cluster::failover`]s (each would burn
    /// an epoch and drain a different RO).
    promotion_lock: Mutex<()>,
}

/// Handle to the running supervisor thread.
struct Supervisor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Supervisor state codes (stored in an atomic, reported by `STATUS`).
const SUP_OFF: u64 = 0;
const SUP_ARMING: u64 = 1;
const SUP_WATCHING: u64 = 2;
const SUP_PROMOTING: u64 = 3;

/// Per-statement routing overrides, carried by proxy sessions
/// (`imci_server`): `None` fields inherit the cluster-level defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOpts {
    /// Consistency level for reads (paper §6.4); `None` uses
    /// `ClusterConfig::consistency`.
    pub consistency: Option<Consistency>,
    /// Pin SELECTs to one engine; `None` keeps cost-based routing.
    pub force_engine: Option<imci_sql::EngineChoice>,
    /// Morsel-parallelism cap for column-engine SELECTs (`SET
    /// PARALLELISM <n>`); `None` uses the node default.
    pub parallelism: Option<usize>,
    /// Late-materialized scan switch (`SET LATE_MATERIALIZATION
    /// ON|OFF`); `None` uses the node default.
    pub late_materialization: Option<bool>,
}

impl ExecOpts {
    /// The per-call options these session overrides hand to
    /// [`QueryEngine::run`] — the consistency field stays behind, it is
    /// resolved by the proxy's routing, not by the node.
    pub fn query_options(&self) -> imci_sql::QueryOptions {
        imci_sql::QueryOptions {
            engine: self.force_engine,
            parallelism: self.parallelism,
            late_materialization: self.late_materialization,
            prune: None,
        }
    }
}

/// RAII hold on an RO node's active-session counter (the §6.1
/// load-balancing signal). A plain `fetch_add`/`fetch_sub` pair leaks
/// the increment if the query panics in between, permanently skewing
/// routing away from the node; the drop guard decrements on every exit
/// path, panic included.
struct SessionGuard {
    node: Arc<RoNode>,
}

impl SessionGuard {
    fn enter(node: &Arc<RoNode>) -> SessionGuard {
        node.sessions.fetch_add(1, Ordering::Relaxed);
        SessionGuard { node: node.clone() }
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.node.sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Timing breakdown of one scale-out operation (Fig. 14).
#[derive(Debug, Clone)]
pub struct ScaleOutReport {
    /// Node name.
    pub name: String,
    /// Whether a checkpoint was available and used.
    pub from_checkpoint: bool,
    /// Time to build in-memory state (checkpoint load or full replay).
    pub load_time: Duration,
    /// Time to catch up to the RW's written LSN at start.
    pub catchup_time: Duration,
}

impl Cluster {
    /// Boot a cluster: RW + `n_ro` RO nodes over a fresh volume.
    pub fn start(config: ClusterConfig) -> Arc<Cluster> {
        let fs = PolarFs::new(config.latency.clone());
        let log = LogWriter::new(fs.clone(), config.propagation);
        let epoch = log.epoch();
        let engine = RowEngine::new_rw(fs.clone(), log, config.bp_capacity);
        let mut query = QueryEngine::row_only(engine.clone());
        query.cost_threshold = config.cost_threshold;
        let heartbeat = Heartbeat::start(fs.clone(), epoch, config.heartbeat_interval);
        let cluster = Arc::new(Cluster {
            fs,
            rw: RwLock::new(Some(RwNode {
                engine,
                query,
                column: None,
                _heartbeat: Some(heartbeat),
            })),
            ros: RwLock::new(Vec::new()),
            config,
            next_ro_id: AtomicU64::new(1),
            next_ckpt: AtomicU64::new(1),
            written_floor: AtomicU64::new(0),
            writer_gate: Mutex::new(()),
            writer_cv: Condvar::new(),
            supervisor: Mutex::new(None),
            auto_failovers: AtomicU64::new(0),
            detection_ms_last: AtomicU64::new(0),
            supervisor_state: AtomicU64::new(SUP_OFF),
            promotion_lock: Mutex::new(()),
        });
        for _ in 0..cluster.config.n_ro {
            cluster.scale_out().expect("initial RO boot");
        }
        if let Some(sc) = cluster.config.supervisor.clone() {
            cluster.start_supervisor(sc);
        }
        cluster
    }

    /// The RW node's storage engine; a retryable [`Error::Failover`]
    /// while the writer role is vacant (crashed, not yet recovered).
    pub fn rw(&self) -> Result<Arc<RowEngine>> {
        self.rw
            .read()
            .as_ref()
            .map(|n| n.engine.clone())
            .ok_or_else(|| Error::Failover("RW node is down; retry after recovery".into()))
    }

    /// The writer role as reported by the proxy's `STATUS` statement:
    /// `"rw+imci"` when the installed writer also serves column plans
    /// (a promoted node with a rebuilt column attachment), `"rw"` for a
    /// row-only writer, `"vacant"` between a crash and the next
    /// recovery/promotion.
    pub fn writer_role(&self) -> &'static str {
        match self.rw.read().as_ref() {
            Some(node) if node.column.is_some() => "rw+imci",
            Some(_) => "rw",
            None => "vacant",
        }
    }

    /// Crash the RW node: drop every piece of its in-process state —
    /// buffer pool, catalog maps, transaction counters — with no flush
    /// of any kind. Everything durable lives in shared storage, which
    /// is the whole §2.2 point. Returns the old engine handle so tests
    /// can keep a "zombie" alive and prove the epoch fence holds.
    /// Until [`Cluster::recover_rw`] or [`Cluster::failover`] installs
    /// a new writer, write statements fail with the retryable
    /// [`Error::Failover`] category.
    pub fn crash_rw(&self) -> Option<Arc<RowEngine>> {
        let taken = self.rw.write().take();
        // Snapshot the durable-commit floor *after* acquiring the
        // writer lock: a commit in flight when the crash begins holds
        // the read lock, finishes (and acks its client) before the
        // take — so it must be inside the strong-consistency fence for
        // the whole vacancy.
        if let Some(node) = &taken {
            if let Some(log) = node.engine.log() {
                self.written_floor
                    .fetch_max(log.written_lsn().get(), Ordering::SeqCst);
            }
        }
        taken.map(|n| {
            // A promoted writer's column pipeline must not keep tailing
            // the log after its node is gone (mirrors scale_in). The
            // heartbeat thread stops with the node's drop — the lease
            // goes silent exactly like a process death.
            if let Some(col) = &n.column {
                col.pipeline.stop();
            }
            n.engine
        })
    }

    /// Restart the RW in place: rebuild a writer from the newest
    /// checkpoint (catalog snapshot + row pages) plus REDO replay from
    /// its cursor, roll back whatever never committed, and start
    /// serving again under a bumped writer epoch. See
    /// [`RowEngine::recover`] for the storage-level contract.
    pub fn recover_rw(&self) -> Result<RecoveryReport> {
        if self.rw.read().is_some() {
            return Err(Error::Execution(
                "RW node is alive; crash_rw() before recover_rw()".into(),
            ));
        }
        // The recovered engine gets a replica-sized (effectively
        // unbounded) pool, like RO nodes and unlike the bootstrap RW:
        // replay requires every replayed page to stay resident
        // (`apply_entry` never falls back to shared storage), and the
        // pool's capacity is fixed at engine creation. Deliberate:
        // promoted nodes (former ROs) have the same shape.
        let mut opts = RecoverOptions::from_log_start(self.config.propagation, usize::MAX / 2);
        if let Some(seq) = imci_core::latest_checkpoint(&self.fs) {
            opts.catalog_snapshot = Some(self.fs.get_object(&imci_core::ckpt_catalog_key(seq))?);
            let mut pages = Vec::new();
            for key in self.fs.list_objects(&imci_core::ckpt_rowpages_prefix(seq)) {
                pages.push(self.fs.get_object(&key)?);
            }
            opts.checkpoint_pages = pages;
            opts.start_offset = imci_core::read_meta(&self.fs, seq)?.redo_offset;
        }
        // Rebuild outside the writer lock (sessions fail fast instead
        // of stalling behind a long replay), install atomically after.
        let (engine, report) = RowEngine::recover(self.fs.clone(), opts)?;
        let mut query = QueryEngine::row_only(engine.clone());
        query.cost_threshold = self.config.cost_threshold;
        let heartbeat = engine.log().map(|log| {
            Heartbeat::start(self.fs.clone(), log.epoch(), self.config.heartbeat_interval)
        });
        *self.rw.write() = Some(RwNode {
            engine,
            query,
            column: None,
            _heartbeat: heartbeat,
        });
        self.notify_writer_change();
        Ok(report)
    }

    /// Promote the most-caught-up RO node to RW (§7: "an up-to-date RO
    /// can be promoted in seconds"). Sequence:
    ///
    /// 1. depose any current writer and **bump the storage epoch** —
    ///    from here the old RW is a fenced zombie and the log tail is
    ///    final;
    /// 2. pick the RO with the highest applied LSN and remove it from
    ///    the proxy's routing set;
    /// 3. **drain** its pipeline to the log's end: every committed
    ///    transaction applied, every undecided DML captured with its
    ///    undo image;
    /// 4. flip its row replica into writer mode (resumed LSN/TID/VID
    ///    counters, epoch-stamped log writer announcing itself with an
    ///    `EpochBump` record) and roll back the in-flight transactions
    ///    with logged compensations, so sibling ROs converge through
    ///    the log as if a live abort had happened;
    /// 5. re-point the proxy: the node serves as the RW, remaining ROs
    ///    keep tailing the same log;
    /// 6. rebuild the node's IMCI column half from the latest
    ///    checkpoint + REDO tail and re-register it with the
    ///    replication pipeline, so the promoted node keeps answering
    ///    column-engine plans — full HTAP after failover.
    ///
    /// The drained RO-era column store cannot be reused: its VID
    /// watermark belongs to the retired pipeline, and re-applying the
    /// checkpoint-to-drain range would double-count. Instead a fresh
    /// store is seeded from the newest checkpoint and caught up through
    /// a shadow row replica tailing the shared log (see
    /// [`ColumnAttachment`] for why the writer's own engine can't feed
    /// phase 1). Row/write service resumes *before* the column rebuild;
    /// column plans lag until the new pipeline catches up, like a
    /// freshly scaled-out RO.
    pub fn failover(&self) -> Result<FailoverReport> {
        let _promotion = self.promotion_lock.lock();
        let t0 = Instant::now();
        // Depose (no-op if already crashed); the floor snapshot runs
        // under the writer lock for the same last-commit race
        // crash_rw() documents.
        drop(self.crash_rw());
        let epoch = self.fs.bump_epoch();
        let node = {
            let mut ros = self.ros.write();
            if ros.is_empty() {
                return Err(Error::Failover("no RO node available to promote".into()));
            }
            let best = ros
                .iter()
                .enumerate()
                .max_by_key(|(_, n)| n.applied_lsn())
                .map(|(i, _)| i)
                .expect("non-empty");
            ros.remove(best)
        };
        let t_drain = Instant::now();
        let state = node.pipeline.stop_after_drain();
        let drain_time = t_drain.elapsed();
        let log = LogWriter::resume(
            self.fs.clone(),
            self.config.propagation,
            state.last_lsn + 1,
            state.applied_lsn,
        )?;
        node.engine
            .promote_to_writer(log.clone(), state.max_tid + 1, state.max_vid);
        let rolled_back_txns = node.engine.rollback_inflight(&state.inflight)?;

        // Column rebuild: checkpoint seed + pipeline over the shared
        // log. Booted before the writer is installed so the attachment
        // is ready, but catch-up happens after — writes don't wait.
        let t_col = Instant::now();
        let follower = self.boot_follower()?;
        let col_metrics = follower.pipeline.metrics().clone();
        let mut query = QueryEngine::dual(node.engine.clone(), follower.store.clone());
        query.cost_threshold = self.config.cost_threshold;
        let heartbeat = Heartbeat::start(self.fs.clone(), epoch, self.config.heartbeat_interval);
        *self.rw.write() = Some(RwNode {
            engine: node.engine.clone(),
            query,
            column: Some(ColumnAttachment {
                _replica: follower.engine,
                _store: follower.store,
                pipeline: follower.pipeline,
            }),
            _heartbeat: Some(heartbeat),
        });
        self.notify_writer_change();
        // Catch the column store up to the promotion point so IMCI
        // plans answer from day one; later commits stream in via CALS
        // like on any RO.
        if state.applied_lsn > 0 {
            col_metrics.wait_applied_at_least(state.applied_lsn, Duration::from_secs(60));
        }
        let column_rebuild_time = t_col.elapsed();
        Ok(FailoverReport {
            promoted: node.name.clone(),
            epoch,
            rolled_back_txns,
            rolled_back_ops: state.inflight.len(),
            drain_time,
            column_rebuild_time,
            total_time: t0.elapsed(),
        })
    }

    /// Bootstrap a CALS follower — row replica + column store + running
    /// replication pipeline — from the newest checkpoint when one
    /// exists, cold from log offset 0 otherwise. Shared by
    /// [`Cluster::scale_out`] (new RO node) and [`Cluster::failover`]
    /// (the promoted writer's column rebuild).
    fn boot_follower(&self) -> Result<Follower> {
        let engine = RowEngine::new_replica(self.fs.clone(), usize::MAX / 2);
        let store = Arc::new(ColumnStore::new(self.config.group_cap));
        let (start_offset, from_checkpoint) = match imci_core::latest_checkpoint(&self.fs) {
            Some(seq) => {
                // Fast start: the checkpoint's catalog snapshot (schemas
                // + catalog version as of its redo cursor), row pages,
                // and column state. DDL after the cursor replays from
                // the log like any other change — no catalog refresh.
                engine.import_catalog(&self.fs.get_object(&imci_core::ckpt_catalog_key(seq))?)?;
                load_checkpoint_pages(&self.fs, seq, &engine)?;
                let meta = imci_core::read_meta(&self.fs, seq)?;
                for tname in engine.table_names() {
                    let rt = engine.table(&tname)?;
                    rt.rebuild_secondaries()?;
                    rt.row_counter
                        .store(rt.tree.count()? as u64, Ordering::SeqCst);
                    if rt.schema.has_column_index() {
                        if let Ok(idx) =
                            imci_core::load_index(&self.fs, seq, &rt.schema, self.config.group_cap)
                        {
                            store.install(idx);
                        } else {
                            store.create_index(&rt.schema);
                        }
                    }
                }
                (meta.redo_offset, true)
            }
            // Cold start: the node boots with an *empty* catalog — the
            // log's DDL records rebuild tables and column indexes in
            // LSN order as the pipeline replays from offset 0.
            None => (0, false),
        };
        let mut repl = self.config.replication.clone();
        repl.start_offset = start_offset;
        let pipeline = Pipeline::start(self.fs.clone(), engine.clone(), store.clone(), repl);
        Ok(Follower {
            engine,
            store,
            pipeline,
            from_checkpoint,
        })
    }

    /// Add an RO node (paper §7): load the newest checkpoint if one
    /// exists, otherwise rebuild from the log, then catch up.
    pub fn scale_out(&self) -> Result<ScaleOutReport> {
        let id = self.next_ro_id.fetch_add(1, Ordering::SeqCst);
        let name = format!("ro-{id}");
        let t0 = Instant::now();
        let follower = self.boot_follower()?;
        let load_time = t0.elapsed();

        // Catch up to the RW's current commit point before serving.
        let t1 = Instant::now();
        let target = self.written_lsn();
        if target > 0 {
            follower
                .pipeline
                .wait_applied(target, Duration::from_secs(60));
        }
        let catchup_time = t1.elapsed();

        let mut query = QueryEngine::dual(follower.engine.clone(), follower.store.clone());
        query.cost_threshold = self.config.cost_threshold;
        let node = Arc::new(RoNode {
            name: name.clone(),
            engine: follower.engine,
            store: follower.store,
            query,
            pipeline: follower.pipeline,
            sessions: AtomicUsize::new(0),
        });
        self.ros.write().push(node);
        Ok(ScaleOutReport {
            name,
            from_checkpoint: follower.from_checkpoint,
            load_time,
            catchup_time,
        })
    }

    /// Remove the most recently added RO node (scale-in). The node's
    /// replication pipeline is stopped here, unconditionally: sessions
    /// may still hold `Arc`s to the node (their in-flight queries keep
    /// working against its frozen state), but its threads must not keep
    /// tailing the log after the node left the routing set.
    pub fn scale_in(&self) -> Option<String> {
        let node = self.ros.write().pop()?;
        node.pipeline.stop();
        Some(node.name.clone())
    }

    /// RW's durable commit LSN ("written LSN", §6.4). While the writer
    /// role is vacant this returns the highest value ever observed, so
    /// strong reads keep fencing on everything acknowledged before the
    /// crash.
    pub fn written_lsn(&self) -> u64 {
        let current = self
            .rw
            .read()
            .as_ref()
            .and_then(|n| n.engine.log())
            .map(|l| l.written_lsn().get())
            .unwrap_or(0);
        let floor = self.written_floor.fetch_max(current, Ordering::SeqCst);
        current.max(floor)
    }

    /// Highest applied LSN across the cluster's column replicas — the
    /// RO nodes plus a promoted writer's column attachment. What the
    /// server's `STATUS` statement reports.
    pub fn applied_lsn(&self) -> u64 {
        let mut best = self
            .ros
            .read()
            .iter()
            .map(|n| n.applied_lsn())
            .max()
            .unwrap_or(0);
        if let Some(node) = self.rw.read().as_ref() {
            if let Some(col) = &node.column {
                best = best.max(col.pipeline.metrics().applied_lsn());
            }
        }
        best
    }

    /// Wake anything parked in [`Cluster::wait_for_writer`]. Callers
    /// must NOT hold the `rw` lock (the waiter acquires it under the
    /// gate; locking the gate with `rw` held would invert that order).
    fn notify_writer_change(&self) {
        let _g = self.writer_gate.lock();
        self.writer_cv.notify_all();
    }

    /// Block until a writer is installed (or the timeout elapses);
    /// returns whether one is up. The server tier parks here before
    /// replaying a statement that hit the failover window.
    pub fn wait_for_writer(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let mut g = self.writer_gate.lock();
            // Checked under the gate: an install between the check and
            // the wait would otherwise be a lost wakeup.
            if self.rw.read().is_some() {
                return true;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            let _ = self.writer_cv.wait_for(&mut g, remaining);
        }
    }

    // ---- cluster supervisor (automatic failure detection) ----

    /// Start the supervisor: a thread watching the shared-storage lease
    /// and triggering [`Cluster::failover`] by itself when the writer
    /// stops stamping it. Detection protocol:
    ///
    /// * **arming** — the supervisor only watches an epoch after seeing
    ///   at least one accepted beat from it, so it never deposes a
    ///   writer that hasn't had a chance to stamp;
    /// * **expiry** — armed, it parks on the lease condvar for the
    ///   remaining lease budget *plus a random jitter*; a beat landing
    ///   in that window re-arms the clock;
    /// * **no flapping** — promotion bumps the volume epoch, a deposed
    ///   epoch's beats are fenced by storage, and the supervisor
    ///   re-arms only on a beat from the *new* epoch — so one slow
    ///   writer triggers at most one promotion, and the promoted
    ///   writer gets the same full arming grace.
    ///
    /// Idempotent: a second call replaces the previous supervisor.
    pub fn start_supervisor(self: &Arc<Cluster>, cfg: SupervisorConfig) {
        let weak = Arc::downgrade(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = stop.clone();
        self.supervisor_state.store(SUP_ARMING, Ordering::SeqCst);
        let handle = std::thread::Builder::new()
            .name("cluster-supervisor".into())
            .spawn(move || supervise(weak, cfg, stop2))
            .expect("spawn supervisor thread");
        *self.supervisor.lock() = Some(Supervisor {
            stop,
            handle: Some(handle),
        });
    }

    /// Stop the supervisor thread (no-op when none is running).
    pub fn stop_supervisor(&self) {
        *self.supervisor.lock() = None;
        self.supervisor_state.store(SUP_OFF, Ordering::SeqCst);
    }

    /// Promotions triggered by the supervisor (not by a caller).
    pub fn auto_failovers(&self) -> u64 {
        self.auto_failovers.load(Ordering::SeqCst)
    }

    /// Detection latency of the last auto-failover, in milliseconds
    /// (time from the last accepted heartbeat to the promotion
    /// trigger). Zero until the first auto-failover.
    pub fn detection_ms_last(&self) -> u64 {
        self.detection_ms_last.load(Ordering::SeqCst)
    }

    /// Human-readable supervisor state (reported by the server's
    /// `STATUS` statement).
    pub fn supervisor_state(&self) -> &'static str {
        match self.supervisor_state.load(Ordering::SeqCst) {
            SUP_ARMING => "arming",
            SUP_WATCHING => "watching",
            SUP_PROMOTING => "promoting",
            _ => "off",
        }
    }

    /// Take a checkpoint covering the current log prefix (the RO-leader
    /// duty of §7; see DESIGN.md for the quiescing substitution).
    pub fn checkpoint_now(&self) -> Result<u64> {
        let seq = self.next_ckpt.fetch_add(1, Ordering::SeqCst);
        take_checkpoint(&self.fs, seq, None, self.config.group_cap)?;
        Ok(seq)
    }

    /// Pick the RO node with the fewest active sessions (proxy
    /// load-balancing, §6.1), honoring the cluster's default
    /// consistency level.
    pub fn route_ro(&self) -> Result<Arc<RoNode>> {
        self.route_ro_with(self.config.consistency)
    }

    /// Like [`Cluster::route_ro`] but with an explicit consistency
    /// level — the per-session enforcement point of §6.4.
    pub fn route_ro_with(&self, consistency: Consistency) -> Result<Arc<RoNode>> {
        let ros = self.ros.read();
        if ros.is_empty() {
            return Err(Error::Execution("no RO nodes available".into()));
        }
        let target = self.written_lsn();
        let eligible: Vec<&Arc<RoNode>> = match consistency {
            Consistency::Eventual => ros.iter().collect(),
            Consistency::Strong => ros.iter().filter(|n| n.applied_lsn() >= target).collect(),
        };
        let pick = |nodes: &[&Arc<RoNode>]| -> Arc<RoNode> {
            nodes
                .iter()
                .min_by_key(|n| n.sessions.load(Ordering::Relaxed))
                .map(|n| Arc::clone(n))
                .expect("non-empty")
        };
        if !eligible.is_empty() {
            return Ok(pick(&eligible));
        }
        // Strong consistency with lagging ROs: park (condvar, not a
        // spin — a busy-wait here burns a core per blocked read) until
        // one catches up.
        let node = pick(&ros.iter().collect::<Vec<_>>());
        drop(ros);
        if !node.pipeline.wait_applied(target, Duration::from_secs(30)) {
            return Err(Error::Execution("strong consistency wait timed out".into()));
        }
        Ok(node)
    }

    /// Execute one SQL statement through the proxy: SELECTs go to an RO
    /// node, everything else to the RW node (§6.1 inter-node routing,
    /// via the rough classifier + full parse).
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_opts(sql, ExecOpts::default())
    }

    /// [`Cluster::execute`] with per-statement overrides. This is what
    /// proxy sessions (`imci_server`) call: each session carries its
    /// own consistency level and engine pin without touching
    /// cluster-global or node-global state.
    pub fn execute_opts(&self, sql: &str, opts: ExecOpts) -> Result<QueryResult> {
        if imci_sql::is_read_only(sql) && !self.ros.read().is_empty() {
            let consistency = opts.consistency.unwrap_or(self.config.consistency);
            let node = self.route_ro_with(consistency)?;
            let _session = SessionGuard::enter(&node);
            let result = self.execute_on_ro(&node, sql, opts);
            return self.absolve_retired_ro(&node, result);
        }
        self.execute_rw(sql, opts)
    }

    /// Re-categorize a read error as retryable when the RO it ran on
    /// has been retired from the routing set mid-statement (promotion
    /// or scale-in drains and converts the node under the read's feet,
    /// so it can surface arbitrary storage errors). A read has no
    /// effect to duplicate, so the retryable failover category is the
    /// truthful one: re-executing on a live node gives the real answer.
    fn absolve_retired_ro(
        &self,
        node: &Arc<RoNode>,
        result: Result<QueryResult>,
    ) -> Result<QueryResult> {
        match result {
            Err(e) if !e.is_retryable() && self.ro_retired(node) => Err(Error::Failover(format!(
                "read ran on {} while it was being promoted/retired: {e}",
                node.name
            ))),
            other => other,
        }
    }

    /// Whether `node` is no longer in the proxy's routing set.
    fn ro_retired(&self, node: &Arc<RoNode>) -> bool {
        !self.ros.read().iter().any(|n| Arc::ptr_eq(n, node))
    }

    /// Execute a batch of statements in one proxy call — the service
    /// tier's `BATCH` fast path. Inter-node routing is resolved **once
    /// per batch** (one `route_ro_with`, one session-counter update)
    /// instead of once per statement; per-statement errors are returned
    /// in place so one bad statement doesn't void the rest.
    ///
    /// Consistency: under `Strong`, each read in the batch still waits
    /// for the chosen RO to apply every write committed so far —
    /// including writes earlier in the same batch — so read-your-writes
    /// holds within a batch.
    pub fn execute_many(
        &self,
        stmts: &[impl AsRef<str>],
        opts: ExecOpts,
    ) -> Vec<Result<QueryResult>> {
        let consistency = opts.consistency.unwrap_or(self.config.consistency);
        let mut out = Vec::with_capacity(stmts.len());
        // One routing decision (and one session-counter hold) for all
        // reads in the batch.
        let mut ro: Option<SessionGuard> = None;
        for sql in stmts {
            let sql = sql.as_ref();
            if imci_sql::is_read_only(sql) && !self.ros.read().is_empty() {
                let resolved = match &ro {
                    Some(guard) => Ok(guard.node.clone()),
                    None => self
                        .route_ro_with(consistency)
                        .inspect(|node| ro = Some(SessionGuard::enter(node))),
                };
                out.push(resolved.and_then(|node| {
                    // Re-arm the strong-consistency fence: writes earlier
                    // in this batch advanced the written LSN after the
                    // route was resolved.
                    let result = if consistency == Consistency::Strong
                        && !node
                            .pipeline
                            .wait_applied(self.written_lsn(), Duration::from_secs(30))
                    {
                        Err(Error::Execution("strong consistency wait timed out".into()))
                    } else {
                        self.execute_on_ro(&node, sql, opts)
                    };
                    self.absolve_retired_ro(&node, result)
                }));
            } else {
                out.push(self.execute_rw(sql, opts));
            }
        }
        out
    }

    /// Run one read on a specific RO node (routing already done). No
    /// catalog-miss retry: the RO catalog is versioned with the log, so
    /// a table the node doesn't know simply does not exist at its
    /// applied LSN — strong-consistency reads fence on DDL commits and
    /// therefore always see the catalog their session expects.
    fn execute_on_ro(&self, node: &RoNode, sql: &str, opts: ExecOpts) -> Result<QueryResult> {
        node.query.run(sql, &opts.query_options())
    }

    /// Run one write/DDL statement on the RW node. DDL (CREATE / DROP /
    /// ALTER) needs no per-replica fan-out: it ships through the REDO
    /// stream as a versioned record and every RO applies it in LSN
    /// order with the data changes. With the writer role vacant
    /// (crash/failover window) the statement fails fast with the
    /// retryable failover category instead of stalling. An engine pin
    /// is honored when the writer is dual-format (promoted node); on a
    /// row-only writer the column attempt reports
    /// `ColumnEngineUnsupported` and `run` falls back to the row
    /// engine, answering exactly as before.
    fn execute_rw(&self, sql: &str, opts: ExecOpts) -> Result<QueryResult> {
        let rw = self.rw.read();
        match rw.as_ref() {
            Some(node) => node.query.run(sql, &opts.query_options()),
            None => Err(Error::Failover(
                "RW node is down; retry after recovery".into(),
            )),
        }
    }

    /// Block until every RO has applied the RW's current written LSN.
    pub fn wait_sync(&self, timeout: Duration) -> bool {
        let target = self.written_lsn();
        let deadline = Instant::now() + timeout;
        let nodes: Vec<Arc<RoNode>> = self.ros.read().iter().cloned().collect();
        for ro in nodes {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if !ro.pipeline.wait_applied(target, remaining) {
                return false;
            }
        }
        true
    }

    /// Visibility delay measurement: commit a marker transaction on RW
    /// and time how long until a chosen RO node has applied it (the VD
    /// metric of Figs. 12/16). Tolerates a promotion landing
    /// mid-measurement: on a [`Error::Failover`] (writer vacant, or the
    /// marker commit fenced) it re-resolves the writer and measures
    /// again instead of propagating the retryable error to monitoring.
    pub fn measure_visibility_delay(&self) -> Result<Duration> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let attempt = (|| {
                let ro = self.route_ro()?;
                let rw = self.rw()?;
                let txn = rw.begin();
                let t0 = Instant::now();
                rw.commit(txn)?;
                let target = self.written_lsn();
                if !ro.pipeline.wait_applied(target, Duration::from_secs(10)) {
                    return Err(Error::Execution("VD wait timed out".into()));
                }
                Ok(t0.elapsed())
            })();
            match attempt {
                Err(Error::Failover(_)) if Instant::now() < deadline => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    self.wait_for_writer(remaining);
                }
                other => return other,
            }
        }
    }

    /// Stop the supervisor, all RO pipelines, and a promoted writer's
    /// column pipeline (drops the nodes). Pipelines are stopped
    /// explicitly — not via `Arc::try_unwrap`, which fails (and used to
    /// silently leak running threads) whenever a session still holds a
    /// node.
    pub fn shutdown(&self) {
        // Supervisor first: it must not interpret the heartbeat
        // stopping below as a writer death and promote mid-shutdown.
        self.stop_supervisor();
        let nodes: Vec<Arc<RoNode>> = self.ros.write().drain(..).collect();
        for node in &nodes {
            node.pipeline.stop();
        }
        if let Some(node) = self.rw.write().as_mut() {
            if let Some(col) = &node.column {
                col.pipeline.stop();
            }
            node._heartbeat = None;
        }
    }
}

/// Supervisor thread body: watch the storage lease, trigger promotion
/// on expiry. See [`Cluster::start_supervisor`] for the protocol.
fn supervise(weak: Weak<Cluster>, cfg: SupervisorConfig, stop: Arc<(Mutex<bool>, Condvar)>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let jitter_us = cfg.jitter.as_micros().max(1) as u64;
    // Armed only after seeing a beat from the current volume epoch —
    // both at startup and after every promotion (the no-flapping rule).
    let mut armed = false;
    loop {
        if *stop.0.lock() {
            return;
        }
        let Some(c) = weak.upgrade() else { return };
        let lease = c.fs.lease();
        let vol_epoch = c.fs.current_epoch();
        if !armed {
            c.supervisor_state.store(SUP_ARMING, Ordering::SeqCst);
            if lease.age.is_some() && lease.epoch >= vol_epoch {
                armed = true;
                continue;
            }
            c.fs.wait_beat(lease.beats, cfg.lease_timeout);
            continue;
        }
        c.supervisor_state.store(SUP_WATCHING, Ordering::SeqCst);
        let age = lease.age.unwrap_or(Duration::ZERO);
        if age < cfg.lease_timeout {
            // Healthy: park on the beat condvar for the remaining
            // lease budget plus jitter. A beat landing in that window
            // wakes us early and re-arms the clock.
            let wait = cfg.lease_timeout - age + Duration::from_micros(rng.gen_range(0..jitter_us));
            c.fs.wait_beat(lease.beats, wait);
            continue;
        }
        if lease.epoch < vol_epoch {
            // Someone else (manual failover / recovery) already fenced
            // the epoch that went silent — never depose it twice.
            armed = false;
            continue;
        }
        c.supervisor_state.store(SUP_PROMOTING, Ordering::SeqCst);
        match c.failover() {
            Ok(_) => {
                c.detection_ms_last
                    .store(age.as_millis() as u64, Ordering::SeqCst);
                c.auto_failovers.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => {
                // Nothing to promote (no RO), or the promotion raced a
                // manual recovery. Park until fresh beats say there is
                // a writer to watch again.
                c.fs.wait_beat(lease.beats, cfg.lease_timeout);
            }
        }
        armed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::Value;
    use imci_sql::EngineChoice;

    const DDL: &str = "CREATE TABLE demo (
        id INT NOT NULL, grp INT, val DOUBLE, note VARCHAR(32),
        PRIMARY KEY(id), KEY grp_idx(grp),
        KEY COLUMN_INDEX(id, grp, val, note))";

    fn small_cluster() -> Arc<Cluster> {
        Cluster::start(ClusterConfig {
            group_cap: 64,
            replication: ReplicationConfig {
                batch_txns: 4,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn end_to_end_htap_path() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..300 {
            c.execute(&format!(
                "INSERT INTO demo VALUES ({i}, {}, {}, 'n{}')",
                i % 3,
                i as f64 * 0.5,
                i % 5
            ))
            .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)), "ROs must catch up");
        // Analytical query routes to RO; force column for determinism.
        c.ros.read()[0].query.set_force(Some(EngineChoice::Column));
        let res = c
            .execute("SELECT grp, COUNT(*), SUM(val) FROM demo GROUP BY grp ORDER BY grp")
            .unwrap();
        assert_eq!(res.rows.len(), 3);
        assert_eq!(res.rows[0][1], Value::Int(100));
        assert_eq!(res.engine, EngineChoice::Column);
        // Point query stays on the row path.
        c.ros.read()[0].query.set_force(None);
        let res = c.execute("SELECT note FROM demo WHERE id = 7").unwrap();
        assert_eq!(res.engine, EngineChoice::Row);
        assert_eq!(res.rows[0][0], Value::Str("n2".into()));
        c.shutdown();
    }

    #[test]
    fn updates_and_deletes_propagate() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..50 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'x')"))
                .unwrap();
        }
        c.execute("UPDATE demo SET val = 99.0 WHERE id = 10")
            .unwrap();
        c.execute("DELETE FROM demo WHERE id = 20").unwrap();
        assert!(c.wait_sync(Duration::from_secs(20)));
        let res = c.execute("SELECT COUNT(*), MAX(val) FROM demo").unwrap();
        assert_eq!(res.rows[0][0], Value::Int(49));
        assert_eq!(res.rows[0][1], Value::Double(99.0));
        c.shutdown();
    }

    #[test]
    fn strong_consistency_reads_own_writes() {
        let mut cfg = ClusterConfig {
            group_cap: 64,
            ..Default::default()
        };
        cfg.consistency = Consistency::Strong;
        let c = Cluster::start(cfg);
        c.execute(DDL).unwrap();
        for i in 0..200 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 1, 1.0, 'y')"))
                .unwrap();
            // Immediately readable: strong consistency must wait for the
            // RO to apply this write.
            if i % 50 == 0 {
                let res = c
                    .execute(&format!("SELECT id FROM demo WHERE id = {i}"))
                    .unwrap();
                assert_eq!(res.rows.len(), 1, "write {i} must be visible");
            }
        }
        c.shutdown();
    }

    #[test]
    fn scale_out_uses_checkpoint_and_serves() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..500 {
            c.execute(&format!(
                "INSERT INTO demo VALUES ({i}, {}, 2.0, 'z')",
                i % 7
            ))
            .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        c.checkpoint_now().unwrap();
        // More traffic after the checkpoint.
        for i in 500..600 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 2.0, 'z')"))
                .unwrap();
        }
        let report = c.scale_out().unwrap();
        assert!(report.from_checkpoint, "checkpoint must be used");
        assert_eq!(c.ros.read().len(), 2);
        // The new node answers queries with fresh data.
        let node = c.ros.read()[1].clone();
        let res = node
            .query
            .run(
                "SELECT COUNT(*) FROM demo",
                &imci_sql::QueryOptions::forced(Some(EngineChoice::Column)),
            )
            .unwrap();
        assert_eq!(res.rows[0][0], Value::Int(600));
        c.shutdown();
    }

    #[test]
    fn alter_add_column_index_online() {
        let c = small_cluster();
        c.execute("CREATE TABLE plain (id INT NOT NULL, v INT, PRIMARY KEY(id))")
            .unwrap();
        for i in 0..100 {
            c.execute(&format!("INSERT INTO plain VALUES ({i}, {i})"))
                .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        c.execute("ALTER TABLE plain ADD COLUMN INDEX (id, v)")
            .unwrap();
        // The ALTER ships as a DDL record whose commit advances the
        // written LSN, so wait_sync covers the RO-side index rebuild.
        assert!(c.wait_sync(Duration::from_secs(20)));
        let node = c.ros.read()[0].clone();
        node.query.set_force(Some(EngineChoice::Column));
        let res = c.execute("SELECT SUM(v) FROM plain").unwrap();
        assert_eq!(res.rows[0][0], Value::Int((0..100).sum::<i64>()));
        assert_eq!(
            res.engine,
            EngineChoice::Column,
            "replicated ALTER must make the column index servable"
        );
        c.shutdown();
    }

    #[test]
    fn ddl_immediately_visible_on_every_ro_node() {
        // Regression for two lazy-refresh races:
        // (1) the pipeline's mid-apply table pickup could drop committed
        //     DMLs for a table created after node start;
        // (2) `execute_opts`'s catalog-miss retry refreshed only the
        //     routed node, leaving sibling replicas stale until they
        //     happened to be routed a failing query.
        // With DDL in the log, a strong read after CREATE;INSERT must
        // succeed on whichever of the 3 RO nodes it round-robins to,
        // with no retry path in the proxy at all.
        let c = Cluster::start(ClusterConfig {
            n_ro: 3,
            group_cap: 64,
            ..Default::default()
        });
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            ..Default::default()
        };
        for round in 0..5 {
            let t = format!("tenant_{round}");
            c.execute(&format!(
                "CREATE TABLE {t} (id INT NOT NULL, v INT, PRIMARY KEY(id),
                 KEY COLUMN_INDEX(id, v))"
            ))
            .unwrap();
            c.execute(&format!("INSERT INTO {t} VALUES (1, {round})"))
                .unwrap();
            // Round-robin immediately after the DDL: every RO must
            // serve the row (strong reads spread across the
            // least-loaded node, and all three see the DDL in order).
            for _ in 0..6 {
                let res = c
                    .execute_opts(&format!("SELECT v FROM {t} WHERE id = 1"), opts)
                    .unwrap();
                assert_eq!(res.rows.len(), 1, "round {round}: row must be visible");
                assert_eq!(res.rows[0][0], Value::Int(round));
            }
            // Every node individually (not just the routed one). The
            // siblings converge through the log — the old design left
            // them stale until they happened to be routed a *failing*
            // query — so after a sync they must all know the table.
            assert!(c.wait_sync(Duration::from_secs(20)));
            for ro in c.ros.read().iter() {
                assert!(
                    ro.engine.table(&t).is_ok(),
                    "round {round}: {} must know {t}",
                    ro.name
                );
                assert_eq!(ro.engine.row_count(&t).unwrap(), 1, "{}", ro.name);
            }
        }
        for ro in c.ros.read().iter() {
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        c.shutdown();
    }

    #[test]
    fn drop_table_errors_on_every_ro_node() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 64,
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 0, 1.0, 'x')")
            .unwrap();
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            ..Default::default()
        };
        assert_eq!(
            c.execute_opts("SELECT id FROM demo WHERE id = 1", opts)
                .unwrap()
                .rows
                .len(),
            1
        );
        c.execute("DROP TABLE demo").unwrap();
        // The drop's commit advances the written LSN, so strong reads
        // fence on it: after the drop every RO must report the table
        // gone (a catalog error), never stale rows.
        assert!(c.wait_sync(Duration::from_secs(20)));
        for _ in 0..4 {
            let err = c
                .execute_opts("SELECT id FROM demo WHERE id = 1", opts)
                .unwrap_err();
            assert!(matches!(err, Error::Catalog(_)), "got {err}");
        }
        for ro in c.ros.read().iter() {
            assert!(ro.engine.table("demo").is_err(), "{}", ro.name);
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        // A write to the dropped table fails on the RW too.
        assert!(c
            .execute("INSERT INTO demo VALUES (2, 0, 1.0, 'y')")
            .is_err());
        c.shutdown();
    }

    #[test]
    fn commented_and_parenthesized_selects_route_to_ro() {
        // Regression: `is_read_only` used to look only at the first six
        // bytes, so a SELECT behind a comment or paren was misrouted to
        // the RW node — bypassing RO load balancing and FORCE_ENGINE.
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..50 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'x')"))
                .unwrap();
        }
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            // The RW node has no column store: a result on the COLUMN
            // engine proves the statement ran on an RO node.
            force_engine: Some(EngineChoice::Column),
            ..Default::default()
        };
        for sql in [
            "-- comment\nSELECT COUNT(*) FROM demo",
            "/* hint */ SELECT COUNT(*) FROM demo",
            "(SELECT COUNT(*) FROM demo)",
        ] {
            let res = c.execute_opts(sql, opts).unwrap();
            assert_eq!(res.rows[0][0], Value::Int(50), "{sql}");
            assert_eq!(res.engine, EngineChoice::Column, "{sql} must hit an RO");
        }
        c.shutdown();
    }

    #[test]
    fn execute_many_batches_reads_and_writes() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        let stmts: Vec<String> = (0..20)
            .map(|i| format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'b')"))
            .chain(std::iter::once("SELECT COUNT(*) FROM demo".to_string()))
            .chain(std::iter::once("SELECT bogus FROM nowhere".to_string()))
            .chain(std::iter::once("SELECT MAX(id) FROM demo".to_string()))
            .collect();
        let results = c.execute_many(
            &stmts,
            ExecOpts {
                consistency: Some(Consistency::Strong),
                ..Default::default()
            },
        );
        assert_eq!(results.len(), 23);
        for r in &results[..20] {
            assert_eq!(r.as_ref().unwrap().affected, 1);
        }
        // Read-your-writes within the batch: the count sees all 20
        // inserts issued moments earlier in the same call.
        assert_eq!(results[20].as_ref().unwrap().rows[0][0], Value::Int(20));
        assert!(results[21].is_err(), "bad statement errors in place");
        assert_eq!(results[22].as_ref().unwrap().rows[0][0], Value::Int(19));
        c.shutdown();
    }

    #[test]
    fn session_counters_return_to_zero() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 0, 1.0, 'x')")
            .unwrap();
        for _ in 0..10 {
            let _ = c.execute("SELECT COUNT(*) FROM demo");
            // Errors (parse failures on the RO) must not leak the
            // session count either.
            let _ = c.execute("SELECT FROM demo WHERE");
        }
        let _ = c.execute_many(
            &["SELECT COUNT(*) FROM demo", "SELECT * FROM missing"],
            ExecOpts::default(),
        );
        for ro in c.ros.read().iter() {
            assert_eq!(ro.sessions.load(Ordering::SeqCst), 0);
        }
        c.shutdown();
    }

    #[test]
    fn scale_in_stops_pipeline_with_live_arcs() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        c.scale_out().unwrap();
        // A "session" still holds the node when it is scaled in.
        let held = c.ros.read().last().unwrap().clone();
        let before = held.applied_lsn();
        assert!(c.scale_in().is_some());
        // The pipeline was stopped even though `held` kept the Arc
        // alive: new writes must no longer advance its applied LSN.
        for i in 100..160 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'x')"))
                .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            held.applied_lsn(),
            before,
            "stopped pipeline must not apply"
        );
        c.shutdown();
    }

    #[test]
    fn crash_then_recover_restores_every_committed_transaction() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..300 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'a')"))
                .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        c.checkpoint_now().unwrap();
        // Post-checkpoint traffic: must come back from REDO replay.
        for i in 300..400 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 1, 2.0, 'b')"))
                .unwrap();
        }
        c.execute("UPDATE demo SET val = 99.0 WHERE id = 7")
            .unwrap();
        c.execute("DELETE FROM demo WHERE id = 8").unwrap();
        // An in-flight transaction dies with the node.
        let rw = c.rw().unwrap();
        let mut doomed = rw.begin();
        rw.insert(
            &mut doomed,
            "demo",
            vec![
                Value::Int(9999),
                Value::Int(0),
                Value::Double(0.0),
                Value::Null,
            ],
        )
        .unwrap();
        let written_before = c.written_lsn();

        let zombie = c.crash_rw().expect("RW was up");
        // Writes fail fast with the retryable category while down...
        let err = c
            .execute("INSERT INTO demo VALUES (400, 0, 1.0, 'x')")
            .unwrap_err();
        assert!(matches!(err, Error::Failover(_)), "got {err}");
        assert!(err.is_retryable());
        // ...but reads keep serving from the ROs, fencing on the
        // pre-crash written LSN.
        assert!(c.written_lsn() >= written_before);
        // Commit-gated visibility lives on the column side (the row
        // replica physically holds CALS-shipped uncommitted rows), so
        // read through the column engine.
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            force_engine: Some(EngineChoice::Column),
            ..Default::default()
        };
        let res = c.execute_opts("SELECT COUNT(*) FROM demo", opts).unwrap();
        assert_eq!(res.rows[0][0], Value::Int(399));

        let report = c.recover_rw().unwrap();
        assert!(report.from_checkpoint, "newest checkpoint must seed");
        assert_eq!(report.rolled_back_txns, 1, "the in-flight txn");
        // Every committed transaction restored, none of the
        // uncommitted ones.
        let rec = c.rw().unwrap();
        assert_eq!(rec.row_count("demo").unwrap(), 399);
        assert_eq!(
            rec.get_row("demo", 7).unwrap().unwrap().values[2],
            Value::Double(99.0)
        );
        assert!(rec.get_row("demo", 8).unwrap().is_none());
        assert!(rec.get_row("demo", 9999).unwrap().is_none());
        // The recovered RW serves writes; the zombie is fenced.
        c.execute("INSERT INTO demo VALUES (400, 0, 1.0, 'x')")
            .unwrap();
        let mut ztxn = zombie.begin();
        let zerr = zombie
            .insert(
                &mut ztxn,
                "demo",
                vec![
                    Value::Int(7777),
                    Value::Int(0),
                    Value::Double(0.0),
                    Value::Null,
                ],
            )
            .unwrap_err();
        assert!(zerr.is_retryable(), "zombie append must be fenced");
        // ROs tail through the crash: compensations + new writes land.
        assert!(c.wait_sync(Duration::from_secs(20)));
        for ro in c.ros.read().iter() {
            assert_eq!(ro.engine.row_count("demo").unwrap(), 400, "{}", ro.name);
            assert!(ro.engine.get_row("demo", 9999).unwrap().is_none());
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        c.shutdown();
    }

    #[test]
    fn failover_promotes_an_ro_and_fences_the_old_rw() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 64,
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        for i in 0..200 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'a')"))
                .unwrap();
        }
        // In flight at the crash: shipped by CALS, must be rolled back
        // by the promotion on every surviving node.
        let rw = c.rw().unwrap();
        let mut doomed = rw.begin();
        rw.update(
            &mut doomed,
            "demo",
            5,
            vec![
                Value::Int(5),
                Value::Int(0),
                Value::Double(-1.0),
                Value::Null,
            ],
        )
        .unwrap();
        rw.insert(
            &mut doomed,
            "demo",
            vec![
                Value::Int(5000),
                Value::Int(0),
                Value::Double(0.0),
                Value::Null,
            ],
        )
        .unwrap();

        let zombie = c.crash_rw().expect("RW was up");
        let report = c.failover().unwrap();
        assert!(report.promoted.starts_with("ro-"), "{}", report.promoted);
        assert_eq!(report.rolled_back_txns, 1);
        assert_eq!(report.rolled_back_ops, 2);
        assert_eq!(c.ros.read().len(), 1, "promoted node left the RO set");

        // The committed prefix survived, the in-flight txn did not.
        let new_rw = c.rw().unwrap();
        assert_eq!(new_rw.row_count("demo").unwrap(), 200);
        assert_eq!(
            new_rw.get_row("demo", 5).unwrap().unwrap().values[2],
            Value::Double(1.0),
            "in-flight update rolled back on the promoted node"
        );
        assert!(new_rw.get_row("demo", 5000).unwrap().is_none());

        // The deposed RW can never append again (epoch fence).
        let mut ztxn = zombie.begin();
        assert!(zombie
            .insert(
                &mut ztxn,
                "demo",
                vec![
                    Value::Int(6000),
                    Value::Int(0),
                    Value::Double(0.0),
                    Value::Null
                ],
            )
            .unwrap_err()
            .is_retryable());

        // The cluster serves writes + strong reads through the new RW;
        // the surviving RO converges through the same log, including
        // the promotion's compensation records.
        c.execute("INSERT INTO demo VALUES (201, 1, 2.0, 'post')")
            .unwrap();
        assert!(c.wait_sync(Duration::from_secs(20)));
        let opts = ExecOpts {
            consistency: Some(Consistency::Strong),
            ..Default::default()
        };
        let res = c.execute_opts("SELECT COUNT(*) FROM demo", opts).unwrap();
        assert_eq!(res.rows[0][0], Value::Int(201));
        for ro in c.ros.read().iter() {
            assert_eq!(ro.engine.row_count("demo").unwrap(), 201, "{}", ro.name);
            assert_eq!(
                ro.engine.get_row("demo", 5).unwrap().unwrap().values[2],
                Value::Double(1.0),
                "{}: rollback replicated",
                ro.name
            );
            assert_eq!(ro.pipeline.error_count(), 0, "{}", ro.name);
        }
        c.shutdown();
    }

    #[test]
    fn failover_with_no_ro_reports_failover_error() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 0,
            group_cap: 64,
            ..Default::default()
        });
        c.execute("CREATE TABLE solo (id INT NOT NULL, PRIMARY KEY(id))")
            .unwrap();
        c.crash_rw();
        let err = c.failover().unwrap_err();
        assert!(matches!(err, Error::Failover(_)), "got {err}");
        // Recovery still brings the cluster back.
        c.recover_rw().unwrap();
        c.execute("INSERT INTO solo VALUES (1)").unwrap();
        c.shutdown();
    }

    #[test]
    fn repeated_failovers_keep_epochs_monotonic() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 3,
            group_cap: 64,
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        let mut last_epoch = 0;
        for round in 0..3 {
            c.execute(&format!("INSERT INTO demo VALUES ({round}, 0, 1.0, 'r')"))
                .unwrap();
            c.crash_rw();
            let report = c.failover().unwrap();
            assert!(report.epoch > last_epoch, "epochs strictly increase");
            last_epoch = report.epoch;
        }
        assert_eq!(c.ros.read().len(), 0, "each round consumed one RO");
        // All three rounds' writes survived three ownership changes.
        let res = c.execute("SELECT COUNT(*) FROM demo").unwrap();
        assert_eq!(res.rows[0][0], Value::Int(3));
        c.shutdown();
    }

    #[test]
    fn promoted_writer_serves_column_plans() {
        // Full HTAP after failover: with the only RO promoted, reads
        // fall through to the writer — which must answer COLUMN-engine
        // plans from its rebuilt attachment, not just row plans.
        let c = small_cluster();
        c.execute(DDL).unwrap();
        for i in 0..300 {
            c.execute(&format!(
                "INSERT INTO demo VALUES ({i}, {}, 1.0, 'a')",
                i % 3
            ))
            .unwrap();
        }
        assert!(c.wait_sync(Duration::from_secs(20)));
        c.checkpoint_now().unwrap();
        // Traffic after the checkpoint: the rebuild must cover the
        // REDO tail, not just the checkpoint image.
        for i in 300..350 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'b')"))
                .unwrap();
        }
        c.crash_rw();
        let report = c.failover().unwrap();
        assert!(c.ros.read().is_empty(), "single RO was promoted");
        assert!(report.column_rebuild_time > Duration::ZERO);

        let opts = ExecOpts {
            consistency: None,
            force_engine: Some(EngineChoice::Column),
            ..Default::default()
        };
        let res = c
            .execute_opts(
                "SELECT grp, COUNT(*) FROM demo GROUP BY grp ORDER BY grp",
                opts,
            )
            .unwrap();
        assert_eq!(
            res.engine,
            EngineChoice::Column,
            "promoted RW must serve IMCI plans"
        );
        assert_eq!(res.rows[0][1], Value::Int(150));
        // The attachment keeps tailing the new writer's own commits.
        c.execute("INSERT INTO demo VALUES (999, 0, 1.0, 'c')")
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let res = c.execute_opts("SELECT COUNT(*) FROM demo", opts).unwrap();
            if res.rows[0][0] == Value::Int(351) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "post-promotion commit never became visible"
            );
            std::thread::yield_now();
        }
        c.shutdown();
    }

    #[test]
    fn supervisor_detects_writer_death_and_promotes() {
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 64,
            heartbeat_interval: Duration::from_millis(5),
            supervisor: Some(SupervisorConfig {
                lease_timeout: Duration::from_millis(60),
                jitter: Duration::from_millis(20),
                seed: 7,
            }),
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        for i in 0..100 {
            c.execute(&format!("INSERT INTO demo VALUES ({i}, 0, 1.0, 'x')"))
                .unwrap();
        }
        // Kill the writer. Nobody calls failover(): the lease expires
        // and the supervisor promotes on its own.
        drop(c.crash_rw());
        let deadline = Instant::now() + Duration::from_secs(10);
        while c.auto_failovers() == 0 {
            assert!(Instant::now() < deadline, "supervisor never promoted");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(c.wait_for_writer(Duration::from_secs(10)));
        assert_eq!(c.auto_failovers(), 1);
        assert!(
            c.detection_ms_last() >= 60,
            "detection can't beat the lease timeout: {}ms",
            c.detection_ms_last()
        );
        // Committed data survived and the promoted writer serves. The
        // count reads Strong: an eventual read could race the surviving
        // RO's replay of the post-promotion insert.
        c.execute("INSERT INTO demo VALUES (100, 0, 1.0, 'y')")
            .unwrap();
        let res = c
            .execute_opts(
                "SELECT COUNT(*) FROM demo",
                ExecOpts {
                    consistency: Some(Consistency::Strong),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(res.rows[0][0], Value::Int(101));
        // No flapping: the promoted writer keeps beating; several lease
        // windows later there is still exactly one auto-failover.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(c.auto_failovers(), 1, "slow-path supervisor must not flap");
        c.shutdown();
    }

    #[test]
    fn supervisor_does_not_depose_twice_after_manual_failover() {
        // A manual promotion bumps the epoch while the supervisor is
        // armed for the old one. The expired old lease must not
        // trigger a second (automatic) promotion.
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 64,
            heartbeat_interval: Duration::from_millis(5),
            supervisor: Some(SupervisorConfig {
                lease_timeout: Duration::from_millis(60),
                jitter: Duration::from_millis(20),
                seed: 11,
            }),
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 0, 1.0, 'x')")
            .unwrap();
        c.crash_rw();
        c.failover().unwrap();
        // Give the supervisor several full lease windows to (wrongly)
        // react to the deposed epoch's silence.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(c.auto_failovers(), 0, "manual failover must not be doubled");
        assert_eq!(
            c.ros.read().len(),
            1,
            "only the manual promotion consumed an RO"
        );
        c.execute("INSERT INTO demo VALUES (2, 0, 1.0, 'y')")
            .unwrap();
        c.shutdown();
    }

    #[test]
    fn visibility_delay_survives_mid_measurement_promotion() {
        // Crash the writer, then measure VD while a promotion lands
        // concurrently: the probe must re-resolve the writer instead
        // of propagating the retryable failover error.
        let c = Cluster::start(ClusterConfig {
            n_ro: 2,
            group_cap: 64,
            ..Default::default()
        });
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 0, 1.0, 'x')")
            .unwrap();
        c.crash_rw();
        let c2 = c.clone();
        let h = std::thread::spawn(move || c2.measure_visibility_delay());
        std::thread::sleep(Duration::from_millis(30));
        c.failover().unwrap();
        let vd = h
            .join()
            .unwrap()
            .expect("VD probe must ride through the promotion");
        assert!(vd < Duration::from_secs(10));
        c.shutdown();
    }

    #[test]
    fn visibility_delay_is_measurable() {
        let c = small_cluster();
        c.execute(DDL).unwrap();
        c.execute("INSERT INTO demo VALUES (1, 1, 1.0, 'a')")
            .unwrap();
        let vd = c.measure_visibility_delay().unwrap();
        assert!(vd < Duration::from_secs(5));
        c.shutdown();
    }
}
