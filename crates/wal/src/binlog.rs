//! Logical Binlog — the strawman propagation baseline (paper §3.2).
//!
//! MySQL's Binlog records row events logically (table + row values). If
//! PolarDB-IMCI shipped updates this way, the RW node would pay an
//! *extra* log stream and an *extra* fsync per commit. This module
//! implements exactly that so the Fig. 11 experiment can measure the
//! perturbation honestly.

use imci_common::{DdlOp, Error, Result, Row, TableId, Tid};
use polarfs_sim::PolarFs;

/// Shared-storage file name of the binlog.
pub const BINLOG_NAME: &str = "binlog";

/// Kind of a logical row event.
#[derive(Debug, Clone, PartialEq)]
pub enum BinlogKind {
    /// Full new-row image.
    Insert { row: Row },
    /// Primary key + full new-row image (MySQL ROW format ships both
    /// images; we ship the key and the after-image).
    Update { pk: i64, row: Row },
    /// Primary key of the deleted row.
    Delete { pk: i64 },
    /// Transaction committed.
    Commit,
    /// Transaction rolled back.
    Abort,
    /// Catalog change (CREATE/DROP/ALTER): logical binlogs ship DDL as
    /// statements; we ship the structured op with its catalog version.
    Ddl {
        /// Catalog version this event advances the catalog to.
        version: u64,
        /// The catalog change.
        op: DdlOp,
    },
}

/// A logical binlog event.
#[derive(Debug, Clone, PartialEq)]
pub struct BinlogEvent {
    /// Producing transaction.
    pub tid: Tid,
    /// Affected table (zero for decision events).
    pub table_id: TableId,
    /// Event payload.
    pub kind: BinlogKind,
}

impl BinlogEvent {
    /// Encode to the framed wire format (u32 len + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        body.extend_from_slice(&self.tid.get().to_le_bytes());
        body.extend_from_slice(&self.table_id.get().to_le_bytes());
        match &self.kind {
            BinlogKind::Insert { row } => {
                body.push(1);
                let img = row.encode();
                body.extend_from_slice(&(img.len() as u32).to_le_bytes());
                body.extend_from_slice(&img);
            }
            BinlogKind::Update { pk, row } => {
                body.push(2);
                body.extend_from_slice(&pk.to_le_bytes());
                let img = row.encode();
                body.extend_from_slice(&(img.len() as u32).to_le_bytes());
                body.extend_from_slice(&img);
            }
            BinlogKind::Delete { pk } => {
                body.push(3);
                body.extend_from_slice(&pk.to_le_bytes());
            }
            BinlogKind::Commit => body.push(4),
            BinlogKind::Abort => body.push(5),
            BinlogKind::Ddl { version, op } => {
                body.push(6);
                body.extend_from_slice(&version.to_le_bytes());
                let enc = op.encode();
                body.extend_from_slice(&(enc.len() as u32).to_le_bytes());
                body.extend_from_slice(&enc);
            }
        }
        let mut out = Vec::with_capacity(body.len() + 4);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode one framed event; `Ok(None)` when the frame is incomplete.
    pub fn decode(buf: &[u8]) -> Result<Option<(BinlogEvent, usize)>> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if buf.len() < 4 + body_len {
            return Ok(None);
        }
        let body = &buf[4..4 + body_len];
        if body.len() < 17 {
            return Err(Error::Storage("binlog event too short".into()));
        }
        let tid = Tid(u64::from_le_bytes(body[0..8].try_into().unwrap()));
        let table_id = TableId(u64::from_le_bytes(body[8..16].try_into().unwrap()));
        let kind_tag = body[16];
        let rest = &body[17..];
        let kind = match kind_tag {
            1 => {
                let n = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
                BinlogKind::Insert {
                    row: Row::decode(&rest[4..4 + n])?,
                }
            }
            2 => {
                let pk = i64::from_le_bytes(rest[0..8].try_into().unwrap());
                let n = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
                BinlogKind::Update {
                    pk,
                    row: Row::decode(&rest[12..12 + n])?,
                }
            }
            3 => BinlogKind::Delete {
                pk: i64::from_le_bytes(rest[0..8].try_into().unwrap()),
            },
            4 => BinlogKind::Commit,
            5 => BinlogKind::Abort,
            6 => {
                let version = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                let n = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
                let (op, _) = DdlOp::decode(&rest[12..12 + n])?;
                BinlogKind::Ddl { version, op }
            }
            t => return Err(Error::Storage(format!("unknown binlog kind {t}"))),
        };
        Ok(Some((
            BinlogEvent {
                tid,
                table_id,
                kind,
            },
            4 + body_len,
        )))
    }
}

/// Appender for the logical binlog. Appends are fenced with the
/// writer's epoch, same as the REDO stream — a deposed RW must not be
/// able to pollute *either* log (the REDO fence alone would leave the
/// Fig. 11 baseline stream writable by zombies).
pub struct BinlogWriter {
    fs: PolarFs,
    /// Writer epoch stamped on every append; stale epochs are fenced
    /// by [`PolarFs::append_fenced`].
    epoch: u64,
}

impl BinlogWriter {
    /// Create a writer over shared storage, fencing its appends with
    /// `epoch` (the owning redo writer's epoch).
    pub fn new(fs: PolarFs, epoch: u64) -> BinlogWriter {
        BinlogWriter { fs, epoch }
    }

    /// Append a row event (no fsync; that happens at commit). Fails
    /// with [`imci_common::Error::Failover`] when this writer has been
    /// fenced by a promotion.
    pub fn log_event(&self, ev: &BinlogEvent) -> Result<()> {
        self.fs
            .append_fenced(BINLOG_NAME, &ev.encode(), self.epoch)?;
        Ok(())
    }

    /// Append the commit event and fsync — the extra commit-path cost.
    pub fn commit(&self, tid: Tid) -> Result<()> {
        self.log_event(&BinlogEvent {
            tid,
            table_id: TableId::ZERO,
            kind: BinlogKind::Commit,
        })?;
        self.fs.fsync(BINLOG_NAME);
        Ok(())
    }

    /// Append an abort event.
    pub fn abort(&self, tid: Tid) -> Result<()> {
        self.log_event(&BinlogEvent {
            tid,
            table_id: TableId::ZERO,
            kind: BinlogKind::Abort,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::Value;

    #[test]
    fn event_roundtrip() {
        let evs = vec![
            BinlogEvent {
                tid: Tid(1),
                table_id: TableId(2),
                kind: BinlogKind::Insert {
                    row: Row::new(vec![Value::Int(1), Value::Str("x".into())]),
                },
            },
            BinlogEvent {
                tid: Tid(1),
                table_id: TableId(2),
                kind: BinlogKind::Update {
                    pk: 1,
                    row: Row::new(vec![Value::Int(1), Value::Str("y".into())]),
                },
            },
            BinlogEvent {
                tid: Tid(1),
                table_id: TableId(2),
                kind: BinlogKind::Delete { pk: 1 },
            },
            BinlogEvent {
                tid: Tid(1),
                table_id: TableId::ZERO,
                kind: BinlogKind::Commit,
            },
            BinlogEvent {
                tid: Tid(2),
                table_id: TableId(3),
                kind: BinlogKind::Ddl {
                    version: 4,
                    op: DdlOp::DropTable {
                        table_id: TableId(3),
                        name: "t3".into(),
                    },
                },
            },
        ];
        let mut buf = Vec::new();
        for e in &evs {
            buf.extend_from_slice(&e.encode());
        }
        let mut pos = 0;
        let mut out = Vec::new();
        while let Some((e, used)) = BinlogEvent::decode(&buf[pos..]).unwrap() {
            out.push(e);
            pos += used;
        }
        assert_eq!(out, evs);
    }

    #[test]
    fn ddl_event_roundtrips_full_schema() {
        use imci_common::{ColumnDef, DataType, IndexDef, IndexKind, PageId, Schema};
        let schema = Schema::new(
            TableId(5),
            "t5",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("d", DataType::Date),
                ColumnDef::new("x", DataType::Double),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Secondary,
                    name: "d_idx".into(),
                    columns: vec![1],
                },
            ],
        )
        .unwrap();
        for op in [
            DdlOp::CreateTable {
                schema: schema.clone(),
                meta_page: PageId(77),
            },
            DdlOp::ReplaceSchema { schema },
        ] {
            let ev = BinlogEvent {
                tid: Tid(9),
                table_id: op.table_id(),
                kind: BinlogKind::Ddl { version: 11, op },
            };
            let enc = ev.encode();
            let (dec, used) = BinlogEvent::decode(&enc).unwrap().unwrap();
            assert_eq!(used, enc.len());
            assert_eq!(dec, ev);
        }
    }

    #[test]
    fn stale_epoch_binlog_appends_are_fenced() {
        let fs = PolarFs::instant();
        let w = BinlogWriter::new(fs.clone(), fs.current_epoch());
        let ev = BinlogEvent {
            tid: Tid(1),
            table_id: TableId(2),
            kind: BinlogKind::Delete { pk: 1 },
        };
        w.log_event(&ev).unwrap();
        w.commit(Tid(1)).unwrap();
        let len_before = fs.log_len(BINLOG_NAME);
        // A promotion bumps the volume epoch: the zombie's event,
        // commit, and abort appends are all rejected and leave the
        // binlog untouched.
        fs.bump_epoch();
        for err in [
            w.log_event(&ev).unwrap_err(),
            w.commit(Tid(2)).unwrap_err(),
            w.abort(Tid(2)).unwrap_err(),
        ] {
            assert!(matches!(err, Error::Failover(_)), "got {err}");
        }
        assert_eq!(fs.log_len(BINLOG_NAME), len_before);
        // The promoted writer's binlog appends go through.
        let w2 = BinlogWriter::new(fs.clone(), fs.current_epoch());
        w2.commit(Tid(3)).unwrap();
        assert!(fs.log_len(BINLOG_NAME) > len_before);
    }

    #[test]
    fn binlog_is_larger_than_diff_logging_for_updates() {
        // The core of the paper's argument: logical events carry full
        // after-images; redo diffs carry only the changed bytes.
        let wide_row = Row::new(vec![
            Value::Int(1),
            Value::Str("a".repeat(150)),
            Value::Int(2),
        ]);
        let ev = BinlogEvent {
            tid: Tid(1),
            table_id: TableId(1),
            kind: BinlogKind::Update {
                pk: 1,
                row: wide_row.clone(),
            },
        };
        let mut new_row = wide_row.clone();
        new_row.values[2] = Value::Int(3);
        let diff = imci_common::RowDiff::between(&wide_row.encode(), &new_row.encode());
        assert!(ev.encode().len() > 4 * diff.payload_size());
    }
}
