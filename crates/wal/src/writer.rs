//! The REDO log writer living on the RW node.
//!
//! Responsibilities:
//! * assign LSNs and maintain per-transaction `prev_lsn` chains;
//! * append encoded entries to the shared-storage log file — entries are
//!   visible to RO nodes *immediately*, before commit, which is what
//!   makes commit-ahead log shipping possible (paper §5.1);
//! * on commit, write the decision record and fsync (group-commit
//!   boundary); in [`PropagationMode::Binlog`] also write the logical
//!   binlog and fsync it too — the strawman's extra cost (§3.2, Fig. 11).

use crate::record::{RedoEntry, RedoPayload};
use imci_common::{FxHashMap, Lsn, PageId, Result, TableId, Tid, Vid, SYSTEM_TID};
use parking_lot::Mutex;
use polarfs_sim::PolarFs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared-storage file name of the REDO log.
pub const REDO_LOG_NAME: &str = "redo.log";

/// How updates are propagated to RO nodes (ablated in Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Reuse the physical REDO log (the paper's design).
    #[default]
    ReuseRedo,
    /// Additionally ship a logical Binlog (the strawman baseline): one
    /// more log stream to append to and one more fsync per commit.
    Binlog,
}

struct WriterState {
    next_lsn: u64,
    /// prev-LSN chain per open transaction.
    txn_last_lsn: FxHashMap<Tid, Lsn>,
}

/// REDO log writer. One per RW node; thread-safe.
pub struct LogWriter {
    fs: PolarFs,
    state: Mutex<WriterState>,
    /// Highest LSN whose commit record has been made durable — the
    /// proxy's "written LSN" for strong consistency (paper §6.4).
    written_lsn: AtomicU64,
    mode: PropagationMode,
    /// Writer epoch stamped into every shared-storage append. The
    /// volume rejects appends whose epoch is older than its fencing
    /// register, so a writer deposed by recovery/promotion errors out
    /// instead of corrupting the log ([`imci_common::Error::Failover`]).
    epoch: u64,
    binlog: crate::binlog::BinlogWriter,
}

impl LogWriter {
    /// Create a writer over a fresh volume, adopting its current epoch.
    pub fn new(fs: PolarFs, mode: PropagationMode) -> Arc<LogWriter> {
        let epoch = fs.current_epoch();
        Arc::new(LogWriter {
            binlog: crate::binlog::BinlogWriter::new(fs.clone(), epoch),
            fs,
            state: Mutex::new(WriterState {
                next_lsn: 1,
                txn_last_lsn: FxHashMap::default(),
            }),
            written_lsn: AtomicU64::new(0),
            mode,
            epoch,
        })
    }

    /// Resume writing over an existing log: LSN assignment continues at
    /// `next_lsn` and the written-LSN watermark starts at
    /// `written_lsn` (the last durable commit found by replay), so
    /// strong-consistency fences never regress across a failover. The
    /// writer adopts the volume's *current* epoch — the caller must
    /// have bumped it already — and announces the ownership change with
    /// an [`RedoPayload::EpochBump`] record, the resumed log's first
    /// entry.
    pub fn resume(
        fs: PolarFs,
        mode: PropagationMode,
        next_lsn: u64,
        written_lsn: u64,
    ) -> Result<Arc<LogWriter>> {
        let epoch = fs.current_epoch();
        let w = Arc::new(LogWriter {
            binlog: crate::binlog::BinlogWriter::new(fs.clone(), epoch),
            fs,
            state: Mutex::new(WriterState {
                next_lsn: next_lsn.max(1),
                txn_last_lsn: FxHashMap::default(),
            }),
            written_lsn: AtomicU64::new(written_lsn),
            mode,
            epoch,
        });
        w.append(
            SYSTEM_TID,
            TableId::ZERO,
            PageId::ZERO,
            0,
            RedoPayload::EpochBump { epoch },
        )?;
        Ok(w)
    }

    /// Propagation mode in force.
    pub fn mode(&self) -> PropagationMode {
        self.mode
    }

    /// This writer's fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Shared storage handle.
    pub fn fs(&self) -> &PolarFs {
        &self.fs
    }

    /// Append one entry; returns its LSN. The append is immediately
    /// readable by RO nodes tailing the log (CALS). Fails with a
    /// [`imci_common::Error::Failover`] when this writer has been
    /// epoch-fenced by a newer one.
    pub fn append(
        &self,
        tid: Tid,
        table_id: TableId,
        page_id: PageId,
        slot_id: u32,
        payload: RedoPayload,
    ) -> Result<Lsn> {
        let is_decision = payload.is_decision();
        // Hold the LSN lock across the storage append: LSN order must
        // equal log byte order, and a fenced append must not burn an
        // LSN (the next writer resumes from the log's true tail).
        let mut st = self.state.lock();
        let lsn = Lsn(st.next_lsn);
        let prev = if is_decision {
            st.txn_last_lsn.remove(&tid).unwrap_or(Lsn::ZERO)
        } else {
            st.txn_last_lsn.insert(tid, lsn).unwrap_or(Lsn::ZERO)
        };
        let entry = RedoEntry {
            lsn,
            prev_lsn: prev,
            tid,
            table_id,
            page_id,
            slot_id,
            payload,
        };
        match self
            .fs
            .append_fenced(REDO_LOG_NAME, &entry.encode(), self.epoch)
        {
            Ok(_) => {
                st.next_lsn += 1;
                Ok(lsn)
            }
            Err(e) => {
                // Roll the prev-LSN chain back: nothing was written.
                if is_decision {
                    if prev != Lsn::ZERO {
                        st.txn_last_lsn.insert(tid, prev);
                    }
                } else if prev == Lsn::ZERO {
                    st.txn_last_lsn.remove(&tid);
                } else {
                    st.txn_last_lsn.insert(tid, prev);
                }
                Err(e)
            }
        }
    }

    /// Write the commit record for `tid`, fsync the log(s), and publish
    /// the new written-LSN. Returns the commit record's LSN. A fenced
    /// writer fails here *before* the fsync: the transaction is not
    /// durable anywhere and the client must retry against the new RW.
    pub fn commit(&self, tid: Tid, commit_vid: Vid) -> Result<Lsn> {
        let lsn = self.append(
            tid,
            TableId::ZERO,
            PageId::ZERO,
            0,
            RedoPayload::Commit { commit_vid },
        )?;
        self.fs.fsync(REDO_LOG_NAME);
        if self.mode == PropagationMode::Binlog {
            self.binlog.commit(tid)?;
        }
        self.written_lsn.fetch_max(lsn.get(), Ordering::SeqCst);
        Ok(lsn)
    }

    /// Write an abort record for `tid` (no fsync required: aborts don't
    /// gate durability of anything).
    pub fn abort(&self, tid: Tid) -> Result<Lsn> {
        let lsn = self.append(tid, TableId::ZERO, PageId::ZERO, 0, RedoPayload::Abort)?;
        if self.mode == PropagationMode::Binlog {
            self.binlog.abort(tid)?;
        }
        Ok(lsn)
    }

    /// Logical binlog writer (used by the row engine in Binlog mode).
    pub fn binlog(&self) -> &crate::binlog::BinlogWriter {
        &self.binlog
    }

    /// Highest durably-committed LSN (the proxy's written LSN, §6.4).
    pub fn written_lsn(&self) -> Lsn {
        Lsn(self.written_lsn.load(Ordering::SeqCst))
    }

    /// Highest assigned LSN (for monitoring / LSN-delay plots, Fig. 14).
    pub fn tail_lsn(&self) -> Lsn {
        Lsn(self.state.lock().next_lsn - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::LogReader;
    use polarfs_sim::PolarFs;

    #[test]
    fn lsns_are_dense_and_prev_chains_link() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let t = Tid(7);
        let l1 = w
            .append(
                t,
                TableId(1),
                PageId(1),
                0,
                RedoPayload::Insert {
                    pk: 1,
                    image: vec![1],
                },
            )
            .unwrap();
        let l2 = w
            .append(
                t,
                TableId(1),
                PageId(1),
                1,
                RedoPayload::Insert {
                    pk: 2,
                    image: vec![2],
                },
            )
            .unwrap();
        let l3 = w.commit(t, Vid(1)).unwrap();
        assert_eq!((l1, l2, l3), (Lsn(1), Lsn(2), Lsn(3)));

        let mut r = LogReader::new(fs, 0);
        let es = r.read_available();
        assert_eq!(es.len(), 3);
        assert_eq!(es[0].prev_lsn, Lsn::ZERO);
        assert_eq!(es[1].prev_lsn, Lsn(1));
        assert_eq!(es[2].prev_lsn, Lsn(2));
        assert_eq!(w.written_lsn(), l3);
    }

    #[test]
    fn commit_fsyncs_once_in_redo_mode() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        w.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 1,
                image: vec![],
            },
        )
        .unwrap();
        w.commit(Tid(1), Vid(1)).unwrap();
        assert_eq!(fs.stats().fsyncs(), 1);
    }

    #[test]
    fn commit_fsyncs_twice_in_binlog_mode() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::Binlog);
        w.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 1,
                image: vec![],
            },
        )
        .unwrap();
        w.commit(Tid(1), Vid(1)).unwrap();
        // One redo fsync + one binlog fsync: the Fig. 11 overhead.
        assert_eq!(fs.stats().fsyncs(), 2);
    }

    #[test]
    fn interleaved_transactions_keep_separate_chains() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let a = Tid(1);
        let b = Tid(2);
        w.append(a, TableId(1), PageId(1), 0, RedoPayload::Delete { pk: 1 })
            .unwrap();
        w.append(b, TableId(1), PageId(2), 0, RedoPayload::Delete { pk: 2 })
            .unwrap();
        w.append(a, TableId(1), PageId(1), 0, RedoPayload::Delete { pk: 3 })
            .unwrap();
        let mut r = LogReader::new(fs, 0);
        let es = r.read_available();
        assert_eq!(es[2].prev_lsn, es[0].lsn);
        assert_eq!(es[1].prev_lsn, Lsn::ZERO);
    }

    #[test]
    fn abort_does_not_advance_written_lsn() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs, PropagationMode::ReuseRedo);
        w.append(
            Tid(9),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 1,
                image: vec![],
            },
        )
        .unwrap();
        w.abort(Tid(9)).unwrap();
        assert_eq!(w.written_lsn(), Lsn::ZERO);
        assert_eq!(w.tail_lsn(), Lsn(2));
    }

    #[test]
    fn fenced_writer_cannot_append_or_commit() {
        let fs = PolarFs::instant();
        let old = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        old.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Delete { pk: 1 },
        )
        .unwrap();
        let committed_before = old.commit(Tid(1), Vid(1)).unwrap();
        fs.bump_epoch();
        // The zombie writer is fenced on both paths, burns no LSN, and
        // leaves the log byte-identical.
        let len_before = fs.log_len(REDO_LOG_NAME);
        assert!(old
            .append(
                Tid(2),
                TableId(1),
                PageId(1),
                0,
                RedoPayload::Delete { pk: 2 },
            )
            .unwrap_err()
            .is_retryable());
        assert!(old.commit(Tid(2), Vid(2)).unwrap_err().is_retryable());
        assert_eq!(fs.log_len(REDO_LOG_NAME), len_before);
        assert_eq!(old.tail_lsn(), committed_before);
    }

    #[test]
    fn resume_continues_lsns_and_stamps_epoch_bump() {
        let fs = PolarFs::instant();
        let old = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        old.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Delete { pk: 1 },
        )
        .unwrap();
        let last = old.commit(Tid(1), Vid(1)).unwrap();
        fs.bump_epoch();
        let new = LogWriter::resume(
            fs.clone(),
            PropagationMode::ReuseRedo,
            last.get() + 1,
            last.get(),
        )
        .unwrap();
        assert_eq!(new.epoch(), 1);
        assert_eq!(new.written_lsn(), last, "fence floor carried over");
        new.append(
            Tid(2),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Delete { pk: 9 },
        )
        .unwrap();
        new.commit(Tid(2), Vid(2)).unwrap();
        let mut r = LogReader::new(fs, 0);
        let es = r.read_available();
        // Dense LSNs across the ownership change, with the bump record
        // marking where the new writer takes over.
        for (i, e) in es.iter().enumerate() {
            assert_eq!(e.lsn.get(), (i + 1) as u64);
        }
        assert_eq!(
            es[2].payload,
            RedoPayload::EpochBump { epoch: 1 },
            "first resumed record announces the new writer"
        );
    }
}
