//! The REDO log writer living on the RW node.
//!
//! Responsibilities:
//! * assign LSNs and maintain per-transaction `prev_lsn` chains;
//! * append encoded entries to the shared-storage log file — entries are
//!   visible to RO nodes *immediately*, before commit, which is what
//!   makes commit-ahead log shipping possible (paper §5.1);
//! * on commit, write the decision record and fsync (group-commit
//!   boundary); in [`PropagationMode::Binlog`] also write the logical
//!   binlog and fsync it too — the strawman's extra cost (§3.2, Fig. 11).

use crate::record::{RedoEntry, RedoPayload};
use imci_common::{FxHashMap, Lsn, PageId, TableId, Tid, Vid};
use parking_lot::Mutex;
use polarfs_sim::PolarFs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared-storage file name of the REDO log.
pub const REDO_LOG_NAME: &str = "redo.log";

/// How updates are propagated to RO nodes (ablated in Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Reuse the physical REDO log (the paper's design).
    #[default]
    ReuseRedo,
    /// Additionally ship a logical Binlog (the strawman baseline): one
    /// more log stream to append to and one more fsync per commit.
    Binlog,
}

struct WriterState {
    next_lsn: u64,
    /// prev-LSN chain per open transaction.
    txn_last_lsn: FxHashMap<Tid, Lsn>,
}

/// REDO log writer. One per RW node; thread-safe.
pub struct LogWriter {
    fs: PolarFs,
    state: Mutex<WriterState>,
    /// Highest LSN whose commit record has been made durable — the
    /// proxy's "written LSN" for strong consistency (paper §6.4).
    written_lsn: AtomicU64,
    mode: PropagationMode,
    binlog: crate::binlog::BinlogWriter,
}

impl LogWriter {
    /// Create a writer over shared storage.
    pub fn new(fs: PolarFs, mode: PropagationMode) -> Arc<LogWriter> {
        Arc::new(LogWriter {
            binlog: crate::binlog::BinlogWriter::new(fs.clone()),
            fs,
            state: Mutex::new(WriterState {
                next_lsn: 1,
                txn_last_lsn: FxHashMap::default(),
            }),
            written_lsn: AtomicU64::new(0),
            mode,
        })
    }

    /// Propagation mode in force.
    pub fn mode(&self) -> PropagationMode {
        self.mode
    }

    /// Shared storage handle.
    pub fn fs(&self) -> &PolarFs {
        &self.fs
    }

    /// Append one entry; returns its LSN. The append is immediately
    /// readable by RO nodes tailing the log (CALS).
    pub fn append(
        &self,
        tid: Tid,
        table_id: TableId,
        page_id: PageId,
        slot_id: u32,
        payload: RedoPayload,
    ) -> Lsn {
        let is_decision = payload.is_decision();
        let (entry, lsn) = {
            let mut st = self.state.lock();
            let lsn = Lsn(st.next_lsn);
            st.next_lsn += 1;
            let prev = if is_decision {
                st.txn_last_lsn.remove(&tid).unwrap_or(Lsn::ZERO)
            } else {
                st.txn_last_lsn.insert(tid, lsn).unwrap_or(Lsn::ZERO)
            };
            (
                RedoEntry {
                    lsn,
                    prev_lsn: prev,
                    tid,
                    table_id,
                    page_id,
                    slot_id,
                    payload,
                },
                lsn,
            )
        };
        let bytes = entry.encode();
        self.fs.append(REDO_LOG_NAME, &bytes);
        lsn
    }

    /// Write the commit record for `tid`, fsync the log(s), and publish
    /// the new written-LSN. Returns the commit record's LSN.
    pub fn commit(&self, tid: Tid, commit_vid: Vid) -> Lsn {
        let lsn = self.append(
            tid,
            TableId::ZERO,
            PageId::ZERO,
            0,
            RedoPayload::Commit { commit_vid },
        );
        self.fs.fsync(REDO_LOG_NAME);
        if self.mode == PropagationMode::Binlog {
            self.binlog.commit(tid);
        }
        self.written_lsn.fetch_max(lsn.get(), Ordering::SeqCst);
        lsn
    }

    /// Write an abort record for `tid` (no fsync required: aborts don't
    /// gate durability of anything).
    pub fn abort(&self, tid: Tid) -> Lsn {
        let lsn = self.append(tid, TableId::ZERO, PageId::ZERO, 0, RedoPayload::Abort);
        if self.mode == PropagationMode::Binlog {
            self.binlog.abort(tid);
        }
        lsn
    }

    /// Logical binlog writer (used by the row engine in Binlog mode).
    pub fn binlog(&self) -> &crate::binlog::BinlogWriter {
        &self.binlog
    }

    /// Highest durably-committed LSN (the proxy's written LSN, §6.4).
    pub fn written_lsn(&self) -> Lsn {
        Lsn(self.written_lsn.load(Ordering::SeqCst))
    }

    /// Highest assigned LSN (for monitoring / LSN-delay plots, Fig. 14).
    pub fn tail_lsn(&self) -> Lsn {
        Lsn(self.state.lock().next_lsn - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::LogReader;
    use polarfs_sim::PolarFs;

    #[test]
    fn lsns_are_dense_and_prev_chains_link() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let t = Tid(7);
        let l1 = w.append(
            t,
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 1,
                image: vec![1],
            },
        );
        let l2 = w.append(
            t,
            TableId(1),
            PageId(1),
            1,
            RedoPayload::Insert {
                pk: 2,
                image: vec![2],
            },
        );
        let l3 = w.commit(t, Vid(1));
        assert_eq!((l1, l2, l3), (Lsn(1), Lsn(2), Lsn(3)));

        let mut r = LogReader::new(fs, 0);
        let es = r.read_available();
        assert_eq!(es.len(), 3);
        assert_eq!(es[0].prev_lsn, Lsn::ZERO);
        assert_eq!(es[1].prev_lsn, Lsn(1));
        assert_eq!(es[2].prev_lsn, Lsn(2));
        assert_eq!(w.written_lsn(), l3);
    }

    #[test]
    fn commit_fsyncs_once_in_redo_mode() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        w.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 1,
                image: vec![],
            },
        );
        w.commit(Tid(1), Vid(1));
        assert_eq!(fs.stats().fsyncs(), 1);
    }

    #[test]
    fn commit_fsyncs_twice_in_binlog_mode() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::Binlog);
        w.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 1,
                image: vec![],
            },
        );
        w.commit(Tid(1), Vid(1));
        // One redo fsync + one binlog fsync: the Fig. 11 overhead.
        assert_eq!(fs.stats().fsyncs(), 2);
    }

    #[test]
    fn interleaved_transactions_keep_separate_chains() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        let a = Tid(1);
        let b = Tid(2);
        w.append(a, TableId(1), PageId(1), 0, RedoPayload::Delete { pk: 1 });
        w.append(b, TableId(1), PageId(2), 0, RedoPayload::Delete { pk: 2 });
        w.append(a, TableId(1), PageId(1), 0, RedoPayload::Delete { pk: 3 });
        let mut r = LogReader::new(fs, 0);
        let es = r.read_available();
        assert_eq!(es[2].prev_lsn, es[0].lsn);
        assert_eq!(es[1].prev_lsn, Lsn::ZERO);
    }

    #[test]
    fn abort_does_not_advance_written_lsn() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs, PropagationMode::ReuseRedo);
        w.append(
            Tid(9),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 1,
                image: vec![],
            },
        );
        w.abort(Tid(9));
        assert_eq!(w.written_lsn(), Lsn::ZERO);
        assert_eq!(w.tail_lsn(), Lsn(2));
    }
}
