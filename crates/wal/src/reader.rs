//! Sequential REDO log reader used by RO nodes.

use crate::record::RedoEntry;
use polarfs_sim::PolarFs;
use std::time::Duration;

use crate::writer::REDO_LOG_NAME;

/// Chunked tail-reader over the shared-storage REDO log.
///
/// RO nodes keep one of these per replication pipeline; `read_available`
/// drains everything currently durable-or-not (CALS reads entries as
/// soon as they are appended, *before* the commit fsync — §5.1), and
/// `wait_and_read` blocks until the log grows.
pub struct LogReader {
    fs: PolarFs,
    offset: u64,
    buf: Vec<u8>,
}

const CHUNK: usize = 1 << 20;

impl LogReader {
    /// Start reading at `offset` bytes into the log (0 = from start).
    pub fn new(fs: PolarFs, offset: u64) -> LogReader {
        LogReader {
            fs,
            offset,
            buf: Vec::new(),
        }
    }

    /// Byte offset of the next unread position.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read and decode all complete entries currently in the log.
    pub fn read_available(&mut self) -> Vec<RedoEntry> {
        let mut out = Vec::new();
        loop {
            let chunk = self.fs.read_log(REDO_LOG_NAME, self.offset, CHUNK);
            if chunk.is_empty() {
                break;
            }
            self.offset += chunk.len() as u64;
            if self.buf.is_empty() {
                self.buf = chunk;
            } else {
                self.buf.extend_from_slice(&chunk);
            }
            let mut pos = 0;
            while let Ok(Some((entry, used))) = RedoEntry::decode(&self.buf[pos..]) {
                out.push(entry);
                pos += used;
            }
            self.buf.drain(..pos);
        }
        out
    }

    /// Read and decode entries, but never consume bytes at or beyond
    /// offset `cap`. Used by the OnCommit (non-CALS) strawman, which
    /// must not see log entries that are not yet durable.
    pub fn read_until(&mut self, cap: u64) -> Vec<RedoEntry> {
        let mut out = Vec::new();
        while self.offset < cap {
            let max = (cap - self.offset).min(CHUNK as u64) as usize;
            let chunk = self.fs.read_log(REDO_LOG_NAME, self.offset, max);
            if chunk.is_empty() {
                break;
            }
            self.offset += chunk.len() as u64;
            self.buf.extend_from_slice(&chunk);
            let mut pos = 0;
            while let Ok(Some((entry, used))) = RedoEntry::decode(&self.buf[pos..]) {
                out.push(entry);
                pos += used;
            }
            self.buf.drain(..pos);
        }
        out
    }

    /// Block (up to `timeout`) for new log data, then decode it.
    pub fn wait_and_read(&mut self, timeout: Duration) -> Vec<RedoEntry> {
        let have = self.read_available();
        if !have.is_empty() {
            return have;
        }
        self.fs.wait_for_growth(REDO_LOG_NAME, self.offset, timeout);
        self.read_available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RedoPayload;
    use crate::writer::{LogWriter, PropagationMode};
    use imci_common::{PageId, TableId, Tid, Vid};

    #[test]
    fn reads_in_order_across_chunks() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        for i in 0..500 {
            w.append(
                Tid(1),
                TableId(1),
                PageId(i % 7),
                0,
                RedoPayload::Insert {
                    pk: i as i64,
                    image: vec![0u8; 100],
                },
            )
            .unwrap();
        }
        w.commit(Tid(1), Vid(1)).unwrap();
        let mut r = LogReader::new(fs, 0);
        let es = r.read_available();
        assert_eq!(es.len(), 501);
        for (i, e) in es.iter().enumerate() {
            assert_eq!(e.lsn.get(), (i + 1) as u64);
        }
    }

    #[test]
    fn resumes_from_saved_offset() {
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        w.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Delete { pk: 1 },
        )
        .unwrap();
        let mut r = LogReader::new(fs.clone(), 0);
        assert_eq!(r.read_available().len(), 1);
        let off = r.offset();
        w.append(
            Tid(1),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Delete { pk: 2 },
        )
        .unwrap();
        let mut r2 = LogReader::new(fs, off);
        let es = r2.read_available();
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].lsn.get(), 2);
    }

    #[test]
    fn sees_uncommitted_entries_before_commit() {
        // The CALS property: DML entries are readable before the commit
        // record exists at all.
        let fs = PolarFs::instant();
        let w = LogWriter::new(fs.clone(), PropagationMode::ReuseRedo);
        w.append(
            Tid(42),
            TableId(1),
            PageId(1),
            0,
            RedoPayload::Insert {
                pk: 9,
                image: vec![1],
            },
        )
        .unwrap();
        let mut r = LogReader::new(fs, 0);
        let es = r.read_available();
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].tid, Tid(42));
        assert!(!es[0].payload.is_decision());
    }
}
