//! Physical REDO log and logical Binlog for the PolarDB-IMCI repro.
//!
//! The REDO log entry layout follows the paper's Figure 7:
//! `LSN | PrevLSN | TID | PageID | RecordType | SlotID | size | diff`.
//! Our entries additionally carry the table id (real InnoDB recovers it
//! from the page header's index id; we keep the log self-contained) and
//! the primary key of the affected slot, which is the "physiological"
//! flavour of logging InnoDB actually uses (byte-physical within a page,
//! logical across pages).
//!
//! Three families of record types exist:
//!
//! * **user DML records** (`Insert`, `Update`, `Delete`) carrying a TID
//!   of a user transaction, plus `Commit`/`Abort` decision records; and
//! * **system records** (`Smo*`) for page changes produced by the row
//!   store itself — B+tree splits, new roots, page initialization. They
//!   carry [`SYSTEM_TID`] and must be *applied* by Phase-1 replay but
//!   *filtered out* of logical DML extraction (paper §5.3, challenge 2);
//! * **catalog records** (`Ddl`) carrying a full serialized schema and
//!   a monotonic catalog version, so RO catalogs are versioned with the
//!   log instead of lazily refreshed (CREATE/DROP/ALTER apply in LSN
//!   order with the data changes).
//!
//! The [`binlog`] module implements the strawman the paper compares
//! against in Fig. 11: an additional logical log whose extra commit-path
//! fsync is what perturbs OLTP.

pub mod binlog;
pub mod reader;
pub mod record;
pub mod writer;

pub use binlog::{BinlogEvent, BinlogKind, BinlogWriter};
pub use reader::LogReader;
pub use record::{RedoEntry, RedoPayload};
pub use writer::{LogWriter, PropagationMode, REDO_LOG_NAME};
