//! REDO record types and their binary codec.

use imci_common::{DdlOp, Error, Lsn, PageId, Result, RowDiff, TableId, Tid, Vid};

/// Payload of a REDO entry, discriminated by record type.
///
/// `Insert`/`Update`/`Delete` act on a leaf page slot identified by the
/// row's primary key. `Smo*` records describe structure modification
/// operations; each touches exactly one page so that Phase-1's
/// page-partitioned parallel replay never needs cross-worker
/// coordination (paper §5.2: "Phase #1 is page-grained").
#[derive(Debug, Clone, PartialEq)]
pub enum RedoPayload {
    /// Insert `row image` at key `pk` into a leaf page.
    Insert { pk: i64, image: Vec<u8> },
    /// Byte-differential update of the row at key `pk`.
    Update { pk: i64, diff: RowDiff },
    /// Delete the row at key `pk`.
    Delete { pk: i64 },
    /// SMO: drop all entries with key >= `from_pk` from a leaf (they
    /// moved to a sibling during a split).
    SmoTruncate { from_pk: i64 },
    /// SMO: bulk-write entries into a (possibly fresh) leaf page; used
    /// for the right sibling of a split. `next_leaf` rewires the leaf
    /// chain.
    SmoLeafWrite {
        entries: Vec<(i64, Vec<u8>)>,
        next_leaf: Option<PageId>,
    },
    /// SMO: set a leaf's next-leaf pointer.
    SmoSetNext { next_leaf: Option<PageId> },
    /// SMO: insert a separator `key`/`child` pair into an internal page.
    SmoParentInsert { key: i64, child: PageId },
    /// SMO: (re)initialize an internal page with full content.
    SmoInternalWrite {
        keys: Vec<i64>,
        children: Vec<PageId>,
    },
    /// SMO: table metadata change — new root page. `page_id` is the
    /// table's meta page.
    SmoSetRoot { root: PageId },
    /// Transaction committed; `commit_vid` is its commit sequence number
    /// (becomes the version id stamped into the column index VID maps).
    Commit { commit_vid: Vid },
    /// Transaction aborted; RO nodes drop its buffered DMLs (§5.1).
    Abort,
    /// Catalog change (CREATE/DROP/ALTER), shipped through the REDO
    /// stream so replicas apply DDL in LSN order with the data changes.
    /// `version` is the monotonically increasing catalog version; replay
    /// is idempotent (records at or below a node's version are skipped).
    Ddl {
        /// Catalog version this record advances the catalog to.
        version: u64,
        /// The catalog change itself (full serialized schema payloads).
        op: DdlOp,
    },
    /// Writer-ownership change: the first record a resumed writer
    /// (crash recovery or RO→RW promotion) appends. Purely
    /// informational for replicas — the *enforcement* is the shared
    /// storage epoch fence — but it makes ownership transitions visible
    /// in the log and pins where each writer's records start.
    EpochBump {
        /// The new writer's epoch (matches the volume's fencing
        /// register at promotion time).
        epoch: u64,
    },
}

impl RedoPayload {
    /// Numeric record-type tag (Fig. 7's "Record Type" field).
    pub fn kind_tag(&self) -> u8 {
        match self {
            RedoPayload::Insert { .. } => 1,
            RedoPayload::Update { .. } => 2,
            RedoPayload::Delete { .. } => 3,
            RedoPayload::SmoTruncate { .. } => 10,
            RedoPayload::SmoLeafWrite { .. } => 11,
            RedoPayload::SmoSetNext { .. } => 12,
            RedoPayload::SmoParentInsert { .. } => 13,
            RedoPayload::SmoInternalWrite { .. } => 14,
            RedoPayload::SmoSetRoot { .. } => 15,
            RedoPayload::Commit { .. } => 20,
            RedoPayload::Abort => 21,
            RedoPayload::Ddl { .. } => 30,
            RedoPayload::EpochBump { .. } => 40,
        }
    }

    /// Whether this is a structure-modification (system) record.
    pub fn is_smo(&self) -> bool {
        (10..20).contains(&self.kind_tag())
    }

    /// Whether this is a transaction decision record.
    pub fn is_decision(&self) -> bool {
        matches!(self, RedoPayload::Commit { .. } | RedoPayload::Abort)
    }

    /// Whether this is a catalog (DDL) record.
    pub fn is_ddl(&self) -> bool {
        matches!(self, RedoPayload::Ddl { .. })
    }
}

/// One REDO log entry (paper Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct RedoEntry {
    /// Log sequence number: order of this entry in the log.
    pub lsn: Lsn,
    /// LSN of the previous entry of the same transaction (0 = none).
    pub prev_lsn: Lsn,
    /// Transaction that produced this entry; [`imci_common::SYSTEM_TID`]
    /// for SMO records.
    pub tid: Tid,
    /// Table whose page is modified.
    pub table_id: TableId,
    /// Physical page modified by this entry.
    pub page_id: PageId,
    /// Slot hint within the page (position at emit time; replay relies
    /// on the pk instead, which is robust to concurrent reordering).
    pub slot_id: u32,
    /// Record type + differential payload.
    pub payload: RedoPayload,
}

// ---- binary codec ----
//
// Entry frame: u32 body_len | body. Body:
//   u64 lsn | u64 prev_lsn | u64 tid | u64 table_id | u64 page_id
//   | u32 slot_id | u8 kind | payload bytes.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Storage("redo entry truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

impl RedoEntry {
    /// Encode to the framed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        put_u64(&mut body, self.lsn.get());
        put_u64(&mut body, self.prev_lsn.get());
        put_u64(&mut body, self.tid.get());
        put_u64(&mut body, self.table_id.get());
        put_u64(&mut body, self.page_id.get());
        put_u32(&mut body, self.slot_id);
        body.push(self.payload.kind_tag());
        match &self.payload {
            RedoPayload::Insert { pk, image } => {
                put_i64(&mut body, *pk);
                put_bytes(&mut body, image);
            }
            RedoPayload::Update { pk, diff } => {
                put_i64(&mut body, *pk);
                put_u32(&mut body, diff.new_len);
                put_u32(&mut body, diff.splices.len() as u32);
                for (off, bytes) in &diff.splices {
                    put_u32(&mut body, *off);
                    put_bytes(&mut body, bytes);
                }
            }
            RedoPayload::Delete { pk } => put_i64(&mut body, *pk),
            RedoPayload::SmoTruncate { from_pk } => put_i64(&mut body, *from_pk),
            RedoPayload::SmoLeafWrite { entries, next_leaf } => {
                put_u32(&mut body, entries.len() as u32);
                for (pk, img) in entries {
                    put_i64(&mut body, *pk);
                    put_bytes(&mut body, img);
                }
                put_u64(&mut body, next_leaf.map_or(u64::MAX, |p| p.get()));
            }
            RedoPayload::SmoSetNext { next_leaf } => {
                put_u64(&mut body, next_leaf.map_or(u64::MAX, |p| p.get()));
            }
            RedoPayload::SmoParentInsert { key, child } => {
                put_i64(&mut body, *key);
                put_u64(&mut body, child.get());
            }
            RedoPayload::SmoInternalWrite { keys, children } => {
                put_u32(&mut body, keys.len() as u32);
                for k in keys {
                    put_i64(&mut body, *k);
                }
                put_u32(&mut body, children.len() as u32);
                for c in children {
                    put_u64(&mut body, c.get());
                }
            }
            RedoPayload::SmoSetRoot { root } => put_u64(&mut body, root.get()),
            RedoPayload::Commit { commit_vid } => put_u64(&mut body, commit_vid.get()),
            RedoPayload::Abort => {}
            RedoPayload::Ddl { version, op } => {
                put_u64(&mut body, *version);
                put_bytes(&mut body, &op.encode());
            }
            RedoPayload::EpochBump { epoch } => put_u64(&mut body, *epoch),
        }
        let mut out = Vec::with_capacity(body.len() + 4);
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decode one framed entry from the front of `buf`.
    /// Returns `(entry, bytes_consumed)`, or `Ok(None)` if the frame is
    /// incomplete (reader should fetch more bytes).
    pub fn decode(buf: &[u8]) -> Result<Option<(RedoEntry, usize)>> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if buf.len() < 4 + body_len {
            return Ok(None);
        }
        let mut r = Reader {
            buf: &buf[4..4 + body_len],
            pos: 0,
        };
        let lsn = Lsn(r.u64()?);
        let prev_lsn = Lsn(r.u64()?);
        let tid = Tid(r.u64()?);
        let table_id = TableId(r.u64()?);
        let page_id = PageId(r.u64()?);
        let slot_id = r.u32()?;
        let kind = r.u8()?;
        let payload = match kind {
            1 => RedoPayload::Insert {
                pk: r.i64()?,
                image: r.bytes()?,
            },
            2 => {
                let pk = r.i64()?;
                let new_len = r.u32()?;
                let n = r.u32()? as usize;
                let mut splices = Vec::with_capacity(n);
                for _ in 0..n {
                    let off = r.u32()?;
                    splices.push((off, r.bytes()?));
                }
                RedoPayload::Update {
                    pk,
                    diff: RowDiff { new_len, splices },
                }
            }
            3 => RedoPayload::Delete { pk: r.i64()? },
            10 => RedoPayload::SmoTruncate { from_pk: r.i64()? },
            11 => {
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let pk = r.i64()?;
                    entries.push((pk, r.bytes()?));
                }
                let nl = r.u64()?;
                RedoPayload::SmoLeafWrite {
                    entries,
                    next_leaf: (nl != u64::MAX).then_some(PageId(nl)),
                }
            }
            12 => {
                let nl = r.u64()?;
                RedoPayload::SmoSetNext {
                    next_leaf: (nl != u64::MAX).then_some(PageId(nl)),
                }
            }
            13 => RedoPayload::SmoParentInsert {
                key: r.i64()?,
                child: PageId(r.u64()?),
            },
            14 => {
                let nk = r.u32()? as usize;
                let mut keys = Vec::with_capacity(nk);
                for _ in 0..nk {
                    keys.push(r.i64()?);
                }
                let nc = r.u32()? as usize;
                let mut children = Vec::with_capacity(nc);
                for _ in 0..nc {
                    children.push(PageId(r.u64()?));
                }
                RedoPayload::SmoInternalWrite { keys, children }
            }
            15 => RedoPayload::SmoSetRoot {
                root: PageId(r.u64()?),
            },
            20 => RedoPayload::Commit {
                commit_vid: Vid(r.u64()?),
            },
            21 => RedoPayload::Abort,
            30 => {
                let version = r.u64()?;
                let op_bytes = r.bytes()?;
                let (op, _) = DdlOp::decode(&op_bytes)?;
                RedoPayload::Ddl { version, op }
            }
            40 => RedoPayload::EpochBump { epoch: r.u64()? },
            t => return Err(Error::Storage(format!("unknown redo record type {t}"))),
        };
        Ok(Some((
            RedoEntry {
                lsn,
                prev_lsn,
                tid,
                table_id,
                page_id,
                slot_id,
                payload,
            },
            4 + body_len,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imci_common::SYSTEM_TID;

    fn roundtrip(p: RedoPayload) {
        let e = RedoEntry {
            lsn: Lsn(42),
            prev_lsn: Lsn(17),
            tid: Tid(5),
            table_id: TableId(3),
            page_id: PageId(99),
            slot_id: 7,
            payload: p,
        };
        let enc = e.encode();
        let (dec, used) = RedoEntry::decode(&enc).unwrap().unwrap();
        assert_eq!(used, enc.len());
        assert_eq!(dec, e);
    }

    #[test]
    fn roundtrip_all_kinds() {
        roundtrip(RedoPayload::Insert {
            pk: -5,
            image: vec![1, 2, 3],
        });
        roundtrip(RedoPayload::Update {
            pk: 10,
            diff: RowDiff {
                new_len: 20,
                splices: vec![(3, vec![9, 9])],
            },
        });
        roundtrip(RedoPayload::Delete { pk: 123 });
        roundtrip(RedoPayload::SmoTruncate { from_pk: 50 });
        roundtrip(RedoPayload::SmoLeafWrite {
            entries: vec![(1, vec![0xA]), (2, vec![0xB, 0xC])],
            next_leaf: Some(PageId(4)),
        });
        roundtrip(RedoPayload::SmoLeafWrite {
            entries: vec![],
            next_leaf: None,
        });
        roundtrip(RedoPayload::SmoSetNext { next_leaf: None });
        roundtrip(RedoPayload::SmoParentInsert {
            key: 7,
            child: PageId(8),
        });
        roundtrip(RedoPayload::SmoInternalWrite {
            keys: vec![10, 20],
            children: vec![PageId(1), PageId(2), PageId(3)],
        });
        roundtrip(RedoPayload::SmoSetRoot { root: PageId(77) });
        roundtrip(RedoPayload::Commit {
            commit_vid: Vid(1000),
        });
        roundtrip(RedoPayload::Abort);
        roundtrip(RedoPayload::EpochBump { epoch: 7 });
        let bump = RedoPayload::EpochBump { epoch: 7 };
        assert!(!bump.is_smo());
        assert!(!bump.is_decision());
        assert!(!bump.is_ddl());
    }

    #[test]
    fn roundtrip_ddl_records() {
        use imci_common::{ColumnDef, DataType, DdlOp, IndexDef, IndexKind, Schema};
        let schema = Schema::new(
            TableId(9),
            "tenant_t",
            vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("payload", DataType::Str),
            ],
            vec![
                IndexDef {
                    kind: IndexKind::Primary,
                    name: "PRIMARY".into(),
                    columns: vec![0],
                },
                IndexDef {
                    kind: IndexKind::Column,
                    name: "ci".into(),
                    columns: vec![0, 1],
                },
            ],
        )
        .unwrap();
        roundtrip(RedoPayload::Ddl {
            version: 1,
            op: DdlOp::CreateTable {
                schema: schema.clone(),
                meta_page: PageId(12),
            },
        });
        roundtrip(RedoPayload::Ddl {
            version: 2,
            op: DdlOp::ReplaceSchema {
                schema: schema.clone(),
            },
        });
        roundtrip(RedoPayload::Ddl {
            version: 3,
            op: DdlOp::DropTable {
                table_id: TableId(9),
                name: "tenant_t".into(),
            },
        });
        let p = RedoPayload::Ddl {
            version: 3,
            op: DdlOp::DropTable {
                table_id: TableId(9),
                name: "tenant_t".into(),
            },
        };
        assert!(p.is_ddl());
        assert!(!p.is_smo());
        assert!(!p.is_decision());
    }

    #[test]
    fn incomplete_frames_return_none() {
        let e = RedoEntry {
            lsn: Lsn(1),
            prev_lsn: Lsn(0),
            tid: SYSTEM_TID,
            table_id: TableId(1),
            page_id: PageId(1),
            slot_id: 0,
            payload: RedoPayload::Abort,
        };
        let enc = e.encode();
        assert!(RedoEntry::decode(&enc[..3]).unwrap().is_none());
        assert!(RedoEntry::decode(&enc[..enc.len() - 1]).unwrap().is_none());
    }

    #[test]
    fn smo_classification() {
        assert!(RedoPayload::SmoTruncate { from_pk: 0 }.is_smo());
        assert!(!RedoPayload::Insert {
            pk: 0,
            image: vec![]
        }
        .is_smo());
        assert!(RedoPayload::Commit { commit_vid: Vid(1) }.is_decision());
        assert!(!RedoPayload::Delete { pk: 0 }.is_decision());
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut enc = RedoEntry {
            lsn: Lsn(1),
            prev_lsn: Lsn(0),
            tid: Tid(1),
            table_id: TableId(1),
            page_id: PageId(1),
            slot_id: 0,
            payload: RedoPayload::Abort,
        }
        .encode();
        // Corrupt the kind byte (last byte of the body for Abort).
        let n = enc.len();
        enc[n - 1] = 200;
        assert!(RedoEntry::decode(&enc).is_err());
    }
}
