//! The reactor threads, the blocking acceptor, and the worker pool.
//!
//! Threading model:
//!
//! - One acceptor thread blocks in `accept`, applies the connection
//!   budget, and hands admitted sockets to a reactor round-robin.
//! - `reactors` threads each own an epoll instance, a token→connection
//!   map, and a timer wheel. Only the owning reactor calls `epoll_ctl`
//!   for its fds; workers reach it through a dirty-token list plus a
//!   socketpair waker.
//! - `workers` threads block on the per-tenant fair queue and execute
//!   decoded units. A connection is held by at most one worker at a
//!   time (the `scheduled` flag), which gives strict per-connection
//!   response ordering without per-connection threads.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use epoll::{Interest, Poller};
use parking_lot::Mutex;

use crate::admission::{Admission, FairQueue};
use crate::conn::{Conn, OutBuf, ParseState, Queue};
use crate::{Goodbye, NetConfig, Proto, ServiceStats, Step};

/// Reserved token for each reactor's waker pipe.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

const READ_CHUNK: usize = 16 * 1024;
/// Per-event-loop-pass read cap per connection, so one firehose peer
/// cannot monopolise a reactor (level-triggered epoll re-reports).
const READ_BURST: usize = 256 * 1024;
/// Write backpressure: pause reads above HIGH, resume below LOW.
const HIGH_WATER: usize = 256 * 1024;
const LOW_WATER: usize = 64 * 1024;

/// Everything shared by the acceptor, reactors, and workers.
pub(crate) struct Shared<P: Proto> {
    pub proto: Arc<P>,
    pub config: NetConfig,
    pub stats: Arc<ServiceStats>,
    pub admission: Admission,
    pub queue: FairQueue<P>,
    pub reactors: Vec<Arc<ReactorShared<P>>>,
    pub epoch: Instant,
    pub next_token: AtomicU64,
    pub stop_accept: AtomicBool,
    /// Graceful shutdown: stop reading, run queued work, say goodbye.
    pub draining: AtomicBool,
    /// Drain deadline passed: reap every connection immediately.
    pub force_close: AtomicBool,
    /// Reactor threads exit.
    pub stop: AtomicBool,
}

impl<P: Proto> Shared<P> {
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    pub fn wake_all(&self) {
        for r in &self.reactors {
            r.wake();
        }
    }
}

/// The cross-thread face of one reactor: new connections and dirty
/// tokens go in, a waker byte makes the epoll wait return.
pub(crate) struct ReactorShared<P: Proto> {
    waker_tx: UnixStream,
    pub dirty: Mutex<Vec<u64>>,
    pub inbox: Mutex<Vec<Arc<Conn<P>>>>,
}

impl<P: Proto> ReactorShared<P> {
    pub fn new(waker_tx: UnixStream) -> Self {
        ReactorShared {
            waker_tx,
            dirty: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
        }
    }

    pub fn wake(&self) {
        // A full pipe already guarantees a pending wakeup.
        let _ = (&self.waker_tx).write(&[1]);
    }

    pub fn nudge(&self, token: u64) {
        self.dirty.lock().push(token);
        self.wake();
    }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

pub(crate) fn acceptor_loop<P: Proto>(shared: Arc<Shared<P>>, listener: TcpListener) {
    let mut next = 0usize;
    for incoming in listener.incoming() {
        if shared.stop_accept.load(Ordering::SeqCst) {
            break;
        }
        let stream = match incoming {
            Ok(s) => s,
            Err(e) => {
                // WouldBlock only happens after shutdown flipped the
                // listener nonblocking (the fallback wake); don't spin
                // on it while the stop flag is still unset.
                if e.kind() == std::io::ErrorKind::WouldBlock {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                continue;
            }
        };
        shared.stats.connections.fetch_add(1, Ordering::SeqCst);
        let admitted = !shared.draining.load(Ordering::SeqCst) && shared.admission.try_conn();
        if !admitted {
            // Over budget: a one-frame busy refusal, then close. The
            // frame is small enough to fit the kernel send buffer, so a
            // non-reading peer cannot block the acceptor.
            shared
                .stats
                .busy_rejected_conns
                .fetch_add(1, Ordering::SeqCst);
            let mut s = stream;
            let _ = s.set_nodelay(true);
            let _ = s.write_all(&shared.proto.over_budget_frame());
            let _ = s.shutdown(Shutdown::Both);
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            shared.admission.release_conn();
            continue;
        }
        let _ = stream.set_nodelay(true);
        let reactor = shared.reactors[next % shared.reactors.len()].clone();
        next += 1;
        let token = shared.next_token.fetch_add(1, Ordering::SeqCst);
        let (parse, exec) = shared.proto.open();
        let conn = Arc::new(Conn {
            token,
            stream,
            reactor: reactor.clone(),
            parse: Mutex::new(ParseState {
                parse,
                inbuf: crate::buf::InputBuf::new(),
                poisoned: false,
            }),
            q: Mutex::new(Queue {
                units: std::collections::VecDeque::new(),
                exec: Some(exec),
                scheduled: false,
                finalized: false,
            }),
            out: Mutex::new(OutBuf::default()),
            tenant: Mutex::new(Arc::from("")),
            eof: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            last_activity_ms: AtomicU64::new(shared.now_ms()),
            interest_cache: std::sync::atomic::AtomicU8::new(0b01),
        });
        shared.stats.active_sessions.fetch_add(1, Ordering::SeqCst);
        reactor.inbox.lock().push(conn);
        reactor.wake();
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

pub(crate) fn reactor_loop<P: Proto>(
    shared: Arc<Shared<P>>,
    rs: Arc<ReactorShared<P>>,
    mut poller: Poller,
    waker_rx: UnixStream,
) {
    let idle = shared.config.idle_timeout;
    let mut wheel = idle.map(|d| crate::timer::TimerWheel::new(d.as_millis() as u64));
    let mut conns: HashMap<u64, Arc<Conn<P>>> = HashMap::new();
    let mut events = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut expired = Vec::new();
    let mut drain_started = false;

    loop {
        let timeout = match &wheel {
            Some(w) => w
                .next_timeout_ms(shared.now_ms())
                .map(|t| t.clamp(1, 60_000))
                .unwrap_or(60_000),
            None => 60_000,
        } as i32;
        events.clear();
        let _ = poller.wait(&mut events, timeout);

        for ev in &events {
            if ev.token == WAKE_TOKEN {
                while let Ok(n) = (&waker_rx).read(&mut scratch) {
                    if n < scratch.len() {
                        break;
                    }
                }
                continue;
            }
            let Some(conn) = conns.get(&ev.token).cloned() else {
                continue;
            };
            if conn.is_closed() {
                continue;
            }
            if ev.writable {
                conn.try_flush();
            }
            if ev.readable || ev.hangup {
                // EPOLLHUP/RDHUP often arrives in the same pass as the
                // peer's final bytes (write-then-close clients). eof is
                // set from read results inside handle_read, never
                // pre-set here, so those bytes are still drained and
                // answered.
                handle_read(&shared, &conn, &mut scratch, ev.hangup);
            }
            refresh(&shared, &mut poller, &mut conns, &conn);
        }

        // Register newcomers handed over by the acceptor.
        let newcomers: Vec<_> = std::mem::take(&mut *rs.inbox.lock());
        for conn in newcomers {
            use std::os::fd::AsRawFd;
            let now = shared.now_ms();
            conn.last_activity_ms.store(now, Ordering::SeqCst);
            if poller
                .add(conn.stream.as_raw_fd(), conn.token, Interest::READ)
                .is_err()
            {
                release_conn_resources(&shared, &conn);
                continue;
            }
            if let (Some(w), Some(d)) = (wheel.as_mut(), idle) {
                w.insert(conn.token, now + d.as_millis() as u64);
            }
            if shared.draining.load(Ordering::SeqCst) {
                begin_goodbye(&shared, &conn, Goodbye::Drain);
            }
            conns.insert(conn.token, conn);
        }

        // Tokens nudged by workers (flush transitions, closes).
        let dirty: Vec<u64> = std::mem::take(&mut *rs.dirty.lock());
        for token in dirty {
            let Some(conn) = conns.get(&token).cloned() else {
                continue;
            };
            refresh(&shared, &mut poller, &mut conns, &conn);
        }

        // Idle deadlines.
        if let (Some(w), Some(d)) = (wheel.as_mut(), idle) {
            let now = shared.now_ms();
            expired.clear();
            w.expire(now, &mut expired);
            let idle_ms = d.as_millis() as u64;
            for &token in &expired {
                let Some(conn) = conns.get(&token).cloned() else {
                    continue;
                };
                let last = conn.last_activity_ms.load(Ordering::SeqCst);
                let busy = {
                    let q = conn.q.lock();
                    q.scheduled || !q.units.is_empty()
                } || conn.out.lock().pending() > 0;
                if busy || now < last.saturating_add(idle_ms) {
                    // Lazy re-arm at the true (possibly moved) deadline.
                    w.insert(token, last.saturating_add(idle_ms).max(now + 1));
                } else {
                    shared.stats.idle_closed.fetch_add(1, Ordering::SeqCst);
                    begin_goodbye(&shared, &conn, Goodbye::IdleTimeout);
                    refresh(&shared, &mut poller, &mut conns, &conn);
                }
            }
        }

        // Graceful drain: one goodbye per live connection.
        if shared.draining.load(Ordering::SeqCst) && !drain_started {
            drain_started = true;
            for conn in conns.values().cloned().collect::<Vec<_>>() {
                begin_goodbye(&shared, &conn, Goodbye::Drain);
                refresh(&shared, &mut poller, &mut conns, &conn);
            }
        }

        if shared.force_close.load(Ordering::SeqCst) || shared.stop.load(Ordering::SeqCst) {
            for conn in conns.values().cloned().collect::<Vec<_>>() {
                finalize(&shared, &mut poller, &mut conns, &conn);
            }
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
        }
    }
}

/// Read, decode, and enqueue as much as the socket and backpressure
/// allow. `hangup` means the poller reported HUP/RDHUP for this event:
/// the peer sends nothing further, but bytes already buffered in the
/// kernel must still be drained before the connection may close.
fn handle_read<P: Proto>(
    shared: &Arc<Shared<P>>,
    conn: &Arc<Conn<P>>,
    scratch: &mut [u8],
    hangup: bool,
) {
    {
        let mut ps = conn.parse.lock();
        let mut read_total = 0usize;
        while !ps.poisoned && !conn.eof.load(Ordering::SeqCst) {
            match (&conn.stream).read(scratch) {
                Ok(0) => {
                    conn.eof.store(true, Ordering::SeqCst);
                }
                Ok(n) => {
                    conn.last_activity_ms
                        .store(shared.now_ms(), Ordering::SeqCst);
                    ps.inbuf.append(&scratch[..n]);
                    read_total += n;
                    decode_all(shared, conn, &mut ps);
                    if conn.out.lock().pending() > HIGH_WATER {
                        conn.paused.store(true, Ordering::SeqCst);
                        break;
                    }
                    if read_total >= READ_BURST || n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Post-hangup the socket is fully drained once it
                    // would block; no later readable event delivers the
                    // final 0, so this is the EOF.
                    if hangup {
                        conn.eof.store(true, Ordering::SeqCst);
                    }
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.eof.store(true, Ordering::SeqCst);
                }
            }
        }
        if hangup && ps.poisoned {
            // Decoding already stopped (goodbye/poison queued); with
            // the peer gone there is nothing left to read, so record
            // the EOF the skipped loop would have seen.
            conn.eof.store(true, Ordering::SeqCst);
        }
    }
    if conn.eof.load(Ordering::SeqCst) {
        // No more requests will arrive; once the unit queue is idle the
        // close belongs to whoever notices last (here, or the worker
        // that drains the final unit).
        let q = conn.q.lock();
        if q.units.is_empty() && !q.scheduled {
            drop(q);
            conn.out.lock().closing = true;
            conn.try_flush();
        }
    }
}

fn decode_all<P: Proto>(
    shared: &Arc<Shared<P>>,
    conn: &Arc<Conn<P>>,
    ps: &mut crate::conn::ParseState<P>,
) {
    while !ps.poisoned {
        match shared.proto.decode(&mut ps.parse, &mut ps.inbuf) {
            Step::NeedMore => break,
            Step::Unit(u) => enqueue(shared, conn, u),
            Step::Poison(u) => {
                ps.poisoned = true;
                enqueue(shared, conn, u);
            }
        }
    }
}

/// Admission-check a decoded unit and append it to the connection's
/// ordered queue, scheduling the connection if it wasn't already.
fn enqueue<P: Proto>(shared: &Arc<Shared<P>>, conn: &Arc<Conn<P>>, unit: P::Unit) {
    if let Some(t) = shared.proto.tenant_of(&unit) {
        let mut tenant = conn.tenant.lock();
        if &**tenant != t {
            *tenant = Arc::from(t);
        }
    }
    let want = shared.proto.cost(&unit);
    let (unit, cost) = if shared.admission.try_stmts(want) {
        (unit, want)
    } else {
        // Shed: replace with the protocol's retryable rejection, which
        // stays in order so the client sees it exactly where the
        // statement's response would have been.
        shared
            .stats
            .busy_rejected_stmts
            .fetch_add(1, Ordering::SeqCst);
        (shared.proto.reject(unit), 0)
    };
    let mut q = conn.q.lock();
    if q.finalized {
        drop(q);
        shared.admission.release_stmts(cost);
        return;
    }
    q.units.push_back((unit, cost));
    if !q.scheduled {
        q.scheduled = true;
        shared.queue.push(conn.clone());
    }
}

/// Enqueue the protocol's farewell unit (which responds and closes) and
/// stop decoding further input.
fn begin_goodbye<P: Proto>(shared: &Arc<Shared<P>>, conn: &Arc<Conn<P>>, why: Goodbye) {
    conn.parse.lock().poisoned = true;
    let mut q = conn.q.lock();
    if q.finalized {
        return;
    }
    q.finalized = true;
    if why == Goodbye::Drain {
        shared.stats.drained.fetch_add(1, Ordering::SeqCst);
    }
    q.units.push_back((shared.proto.goodbye(why), 0));
    if !q.scheduled {
        q.scheduled = true;
        shared.queue.push(conn.clone());
    }
}

/// Recompute a connection's epoll interest from its current state, or
/// finalize it if its flush finished (or failed) with `closing` set.
fn refresh<P: Proto>(
    shared: &Arc<Shared<P>>,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Arc<Conn<P>>>,
    conn: &Arc<Conn<P>>,
) {
    use std::os::fd::AsRawFd;
    if conn.is_closed() {
        return;
    }
    let (close_now, want_write, pending) = {
        let o = conn.out.lock();
        (o.close_now, o.want_write, o.pending())
    };
    if close_now {
        finalize(shared, poller, conns, conn);
        return;
    }
    if conn.paused.load(Ordering::SeqCst) && pending <= LOW_WATER {
        conn.paused.store(false, Ordering::SeqCst);
    }
    let readable = !shared.draining.load(Ordering::SeqCst)
        && !conn.eof.load(Ordering::SeqCst)
        && !conn.paused.load(Ordering::SeqCst)
        && !conn.parse.lock().poisoned;
    let desired = (readable as u8) | ((want_write as u8) << 1);
    // Only the reactor thread touches the cache, and only after the
    // kernel accepted the change — a failed epoll_ctl must leave the
    // cache on the old value so the next refresh retries instead of
    // silently desyncing from the kernel.
    if conn.interest_cache.load(Ordering::SeqCst) != desired
        && poller
            .modify(
                conn.stream.as_raw_fd(),
                conn.token,
                Interest {
                    readable,
                    writable: want_write,
                },
            )
            .is_ok()
    {
        conn.interest_cache.store(desired, Ordering::SeqCst);
    }
    if readable {
        // Backpressure may have lifted with bytes already buffered:
        // decode them now, since epoll will not re-report old data.
        let mut ps = conn.parse.lock();
        if !ps.inbuf.is_empty() {
            decode_all(shared, conn, &mut ps);
        }
    }
}

/// Deregister, release budgets, and drop the connection. Terminal and
/// idempotent.
fn finalize<P: Proto>(
    shared: &Arc<Shared<P>>,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Arc<Conn<P>>>,
    conn: &Arc<Conn<P>>,
) {
    use std::os::fd::AsRawFd;
    if conn.closed.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = poller.delete(conn.stream.as_raw_fd());
    conns.remove(&conn.token);
    let _ = conn.stream.shutdown(Shutdown::Both);
    release_conn_resources(shared, conn);
}

fn release_conn_resources<P: Proto>(shared: &Arc<Shared<P>>, conn: &Arc<Conn<P>>) {
    let freed: usize = {
        let mut q = conn.q.lock();
        let freed = q.units.iter().map(|&(_, c)| c).sum();
        q.units.clear();
        q.finalized = true;
        freed
    };
    shared.admission.release_stmts(freed);
    shared.admission.release_conn();
    shared.stats.active_sessions.fetch_sub(1, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

pub(crate) fn worker_loop<P: Proto>(shared: Arc<Shared<P>>) {
    let quantum = shared.config.worker_quantum.max(1);
    let mut out = Vec::new();
    while let Some(conn) = shared.queue.pop() {
        if conn.is_closed() {
            conn.q.lock().scheduled = false;
            continue;
        }
        // Take the session state and up to one quantum of ordered units.
        let (mut exec, units, cost) = {
            let mut q = conn.q.lock();
            let Some(exec) = q.exec.take() else {
                q.scheduled = false;
                continue;
            };
            let mut units = Vec::new();
            let mut cost = 0usize;
            while q
                .units
                .front()
                .is_some_and(|&(_, c)| units.is_empty() || cost + c <= quantum)
            {
                let Some((u, c)) = q.units.pop_front() else {
                    break;
                };
                cost += c;
                units.push(u);
            }
            (exec, units, cost)
        };
        let outcome = if units.is_empty() {
            crate::RunOutcome::default()
        } else {
            out.clear();
            let outcome = shared.proto.run(&mut exec, units, &mut out);
            shared.admission.release_stmts(cost);
            let mut o = conn.out.lock();
            if !conn.is_closed() {
                o.buf.extend_from_slice(&out);
            }
            if outcome.close {
                o.closing = true;
            }
            drop(o);
            conn.try_flush();
            outcome
        };
        let mut q = conn.q.lock();
        q.exec = Some(exec);
        if outcome.close {
            // Close supersedes anything the client pipelined behind it.
            let freed: usize = q.units.iter().map(|&(_, c)| c).sum();
            q.units.clear();
            q.finalized = true;
            q.scheduled = false;
            drop(q);
            shared.admission.release_stmts(freed);
        } else if !q.units.is_empty() {
            // More ordered work: go back to the tenant lane, keeping
            // the scheduled flag (still exactly one queue entry).
            drop(q);
            shared.queue.push(conn.clone());
        } else {
            q.scheduled = false;
            let eof = conn.eof.load(Ordering::SeqCst);
            drop(q);
            if eof {
                conn.out.lock().closing = true;
                conn.try_flush();
            }
        }
        // Wake the owning reactor only when this turn left something
        // it must act on: a finished/broken connection to finalize, a
        // short write to re-arm EPOLLOUT for, or a backpressure pause
        // to lift now that the buffer drained. The common fully-flushed
        // turn changes none of these, and skipping the waker write
        // spares a syscall plus a reactor pass per worker turn.
        // (`closing` with a drained buffer became `close_now` inside
        // `try_flush` above, so checking the flags after the flush is
        // exhaustive. If the reactor pauses this connection
        // concurrently with our check reading `false`, its same-pass
        // `refresh` observes the already-drained buffer and unpauses
        // without our nudge.)
        let needs_reactor = {
            let o = conn.out.lock();
            o.close_now || o.want_write || o.closing
        } || conn.paused.load(Ordering::SeqCst);
        if needs_reactor {
            conn.nudge();
        }
    }
}
