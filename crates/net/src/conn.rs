//! Per-connection state shared between the owning reactor thread and
//! the worker pool.
//!
//! Lock order (when nested): `q` → `tenant` → fair-queue inner. The
//! reactor additionally holds `parse` while enqueueing (`parse` → `q`);
//! workers never touch `parse`, so the orders cannot cycle. `out` is
//! only ever held alone.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buf::InputBuf;
use crate::reactor::ReactorShared;
use crate::Proto;

/// Stop copying partially-written output once the dead prefix passes
/// this many bytes.
const OUT_COMPACT: usize = 64 * 1024;

pub(crate) struct Conn<P: Proto> {
    pub token: u64,
    pub stream: TcpStream,
    /// The reactor thread that owns this connection's epoll registration.
    pub reactor: Arc<ReactorShared<P>>,
    /// Framing state; touched only by the owning reactor thread.
    pub parse: Mutex<ParseState<P>>,
    /// Ordered units awaiting execution plus the session state.
    pub q: Mutex<Queue<P>>,
    pub out: Mutex<OutBuf>,
    /// Fair-queue lane key; rewritten when the protocol reports a
    /// tenant change.
    pub tenant: Mutex<Arc<str>>,
    /// Peer finished sending (EOF or read error).
    pub eof: AtomicBool,
    /// Reads paused by write backpressure (reactor-owned hysteresis).
    pub paused: AtomicBool,
    /// Finalized: deregistered, budget released. Terminal.
    pub closed: AtomicBool,
    /// Milliseconds since server epoch of the last inbound data.
    pub last_activity_ms: AtomicU64,
    /// Last interest programmed into epoll, to skip redundant
    /// `epoll_ctl` calls. Bit 0 = readable, bit 1 = writable.
    pub interest_cache: AtomicU8,
}

pub(crate) struct ParseState<P: Proto> {
    pub parse: P::Parse,
    pub inbuf: InputBuf,
    /// Framing is unrecoverable (or the connection is saying goodbye):
    /// stop decoding; the final unit already carries the close.
    pub poisoned: bool,
}

pub(crate) struct Queue<P: Proto> {
    /// Decoded units with their admission cost, in arrival order.
    pub units: VecDeque<(P::Unit, usize)>,
    /// Session state, present iff no worker is currently running this
    /// connection.
    pub exec: Option<P::Exec>,
    /// Connection is in the fair queue or held by a worker. At most one
    /// of either, which is what serialises execution per connection.
    pub scheduled: bool,
    /// A goodbye unit has been enqueued (drain/idle); later decodes are
    /// discarded.
    pub finalized: bool,
}

#[derive(Default)]
pub(crate) struct OutBuf {
    pub buf: Vec<u8>,
    pub pos: usize,
    /// Close the socket once `buf` is fully flushed.
    pub closing: bool,
    /// Flush finished (or the socket died): reactor must finalize now.
    pub close_now: bool,
    /// Kernel send buffer is full; reactor must arm EPOLLOUT.
    pub want_write: bool,
}

impl OutBuf {
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl<P: Proto> Conn<P> {
    /// Write as much buffered output as the socket accepts. Callable
    /// from both workers and the reactor; serialised by the `out` lock.
    /// Transitions (`want_write`, `close_now`) are picked up by the
    /// reactor on its next pass over this token.
    pub fn try_flush(&self) {
        let mut o = self.out.lock();
        loop {
            if o.pos == o.buf.len() {
                o.buf.clear();
                o.pos = 0;
                o.want_write = false;
                if o.closing {
                    o.close_now = true;
                }
                return;
            }
            match (&self.stream).write(&o.buf[o.pos..]) {
                Ok(0) => {
                    o.close_now = true;
                    return;
                }
                Ok(n) => o.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    o.want_write = true;
                    if o.pos > OUT_COMPACT {
                        let pos = o.pos;
                        o.buf.drain(..pos);
                        o.pos = 0;
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Peer reset; drop the tail and let the reactor reap.
                    o.close_now = true;
                    return;
                }
            }
        }
    }

    /// Ask the owning reactor to re-examine this connection (interest
    /// recompute or finalization).
    pub fn nudge(&self) {
        self.reactor.nudge(self.token);
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}
