//! Hashed timer wheel for idle-connection deadlines.
//!
//! Deadlines are bucketed into a fixed ring of slots; `expire` drains
//! every slot the clock has passed. Entries are just tokens — the owner
//! re-checks the real deadline when a token fires and re-inserts it if
//! the deadline moved (lazy re-arm), so touching a connection on every
//! request costs one atomic store, not a wheel operation.

const SLOTS: usize = 64;

pub(crate) struct TimerWheel {
    tick_ms: u64,
    slots: Vec<Vec<u64>>,
    /// Index of the slot whose window starts at `cur_ms`.
    cur: usize,
    cur_ms: u64,
    live: usize,
}

impl TimerWheel {
    /// `span_ms` is the typical deadline horizon (the idle timeout); the
    /// wheel sizes its tick so that horizon fits in one revolution.
    pub fn new(span_ms: u64) -> Self {
        TimerWheel {
            tick_ms: (span_ms / SLOTS as u64).max(10),
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            cur: 0,
            cur_ms: 0,
            live: 0,
        }
    }

    pub fn insert(&mut self, token: u64, deadline_ms: u64) {
        let delta = deadline_ms.saturating_sub(self.cur_ms);
        // Deadlines past one revolution land in the furthest slot and
        // fire early; the owner's deadline re-check re-inserts them.
        let offset = ((delta / self.tick_ms) as usize).min(SLOTS - 1);
        let idx = (self.cur + offset) % SLOTS;
        self.slots[idx].push(token);
        self.live += 1;
    }

    /// Milliseconds until the next non-empty slot has fully elapsed, or
    /// `None` when the wheel is empty.
    pub fn next_timeout_ms(&self, now_ms: u64) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        for i in 0..SLOTS {
            let idx = (self.cur + i) % SLOTS;
            if !self.slots[idx].is_empty() {
                let fire_at = self.cur_ms + (i as u64 + 1) * self.tick_ms;
                return Some(fire_at.saturating_sub(now_ms));
            }
        }
        None
    }

    /// Drain every slot whose window has fully passed by `now_ms`.
    pub fn expire(&mut self, now_ms: u64, out: &mut Vec<u64>) {
        while self.cur_ms + self.tick_ms <= now_ms {
            let fired = std::mem::take(&mut self.slots[self.cur]);
            self.live -= fired.len();
            out.extend(fired);
            self.cur = (self.cur + 1) % SLOTS;
            self.cur_ms += self.tick_ms;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new(6400); // tick = 100ms
        w.insert(1, 150);
        w.insert(2, 450);
        let mut out = Vec::new();
        w.expire(100, &mut out);
        assert!(out.is_empty(), "nothing due at 100ms");
        w.expire(300, &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        w.expire(600, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(w.next_timeout_ms(600), None);
    }

    #[test]
    fn next_timeout_points_at_earliest_entry() {
        let mut w = TimerWheel::new(6400);
        assert_eq!(w.next_timeout_ms(0), None);
        w.insert(7, 1000);
        let t = w.next_timeout_ms(0).unwrap();
        // The slot holding a 1000ms deadline elapses at 1100ms.
        assert_eq!(t, 1100);
        assert_eq!(w.next_timeout_ms(1050).unwrap(), 50);
    }

    #[test]
    fn far_deadlines_fire_early_for_lazy_rearm() {
        let mut w = TimerWheel::new(640); // tick = 10ms, revolution = 640ms
        w.insert(9, 100_000);
        let mut out = Vec::new();
        w.expire(1000, &mut out);
        // Fired well before the real deadline: the caller re-checks and
        // re-inserts.
        assert_eq!(out, vec![9]);
    }
}
