//! imci_net — epoll-based reactor service tier with admission control
//! and overload shedding.
//!
//! The service tier that fronts the database (paper §3: proxy nodes
//! route traffic to RW/RO nodes; a node must hold thousands of mostly
//! idle connections without a thread per connection). It is protocol
//! agnostic: a [`Proto`] implementation supplies framing, execution,
//! and the wire shape of rejections; this crate supplies the threads,
//! the readiness loop, ordering, fairness, and the budgets.
//!
//! ```text
//!                 ┌──────────┐  accept + connection budget
//!      clients ──▶│ acceptor │──────────────┐ round-robin
//!                 └──────────┘              ▼
//!            ┌────────────────────────────────────────────┐
//!            │ reactor threads (one epoll instance each)  │
//!            │   read → decode → admission → unit queue   │
//!            │   write-backpressure, idle timer wheel     │
//!            └───────────────┬───────────▲────────────────┘
//!                    fair    │           │ dirty tokens +
//!                    queue   ▼           │ waker pipe
//!            ┌────────────────────────────────────────────┐
//!            │ workers: pop conn → run units → flush      │
//!            └────────────────────────────────────────────┘
//! ```
//!
//! Per-connection life cycle (driven by readiness, never by blocking):
//!
//! ```text
//!   read ──▶ decode ──▶ admit ──▶ queue ──▶ run ──▶ flush ─┐
//!    ▲                    │ full                           │ backlog
//!    │                    ▼                                ▼
//!    │                 reject (retryable busy,        pause reads
//!    │                 in response order)             until drained
//!    └─────────────────────────────────────────────────────┘
//! ```
//!
//! Overload policy: budgets shed work instead of queueing it. A full
//! connection budget answers with one busy frame at accept; a full
//! statement queue turns the statement into an in-order retryable
//! rejection; a drain or idle timeout injects a farewell unit that is
//! answered after all accepted work, then the socket closes.

mod admission;
mod buf;
mod conn;
mod reactor;
mod timer;

pub use buf::InputBuf;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epoll::{Interest, Poller};

use admission::{Admission, FairQueue};
use reactor::{Shared, WAKE_TOKEN};

/// One step of frame decoding.
pub enum Step<U> {
    /// The buffer does not hold a full frame yet.
    NeedMore,
    /// One decoded unit of work.
    Unit(U),
    /// A final unit after which no more input is decodable (protocol
    /// violation, or an explicit quit): run it, then close.
    Poison(U),
}

/// Why the service tier is saying goodbye to a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Goodbye {
    /// Graceful shutdown: accepted work ran; the server is going away.
    Drain,
    /// The connection sat idle past the configured timeout.
    IdleTimeout,
}

/// What `Proto::run` decided about the connection's future.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOutcome {
    /// Close the connection once the produced output is flushed.
    pub close: bool,
}

/// A wire protocol hosted by the reactor tier.
///
/// Decoding runs on reactor threads and must never block; execution
/// runs on worker threads and may. Units flow strictly in arrival
/// order per connection, so responses are ordered even under
/// pipelining.
pub trait Proto: Send + Sync + 'static {
    /// Reactor-side framing state (one per connection).
    type Parse: Send + 'static;
    /// Worker-side session state (one per connection).
    type Exec: Send + 'static;
    /// One ordered, executable request.
    type Unit: Send + 'static;

    /// Fresh per-connection state.
    fn open(&self) -> (Self::Parse, Self::Exec);

    /// Carve the next unit off the front of `buf`.
    fn decode(&self, parse: &mut Self::Parse, buf: &mut InputBuf) -> Step<Self::Unit>;

    /// Admission cost of a unit (0 = control-plane, always admitted).
    fn cost(&self, unit: &Self::Unit) -> usize;

    /// Tenant this unit switches the connection to, if any, for fair
    /// scheduling.
    fn tenant_of<'u>(&self, _unit: &'u Self::Unit) -> Option<&'u str> {
        None
    }

    /// Replace a shed unit with one that produces the protocol's
    /// retryable busy response in its place.
    fn reject(&self, unit: Self::Unit) -> Self::Unit;

    /// A final unit that tells the client why the server is closing.
    fn goodbye(&self, why: Goodbye) -> Self::Unit;

    /// Raw bytes written to a connection rejected by the connection
    /// budget, before any session exists.
    fn over_budget_frame(&self) -> Vec<u8>;

    /// Execute a batch of ordered units, appending responses to `out`.
    fn run(&self, exec: &mut Self::Exec, units: Vec<Self::Unit>, out: &mut Vec<u8>) -> RunOutcome;
}

/// Service-tier configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Event-loop threads. Connections are spread round-robin.
    pub reactors: usize,
    /// Execution threads shared by all connections.
    pub workers: usize,
    /// Hard cap on concurrently open sessions.
    pub max_connections: usize,
    /// Cap on total queued admission cost; beyond it statements are
    /// shed with a retryable busy error.
    pub max_queued_statements: usize,
    /// Close connections with no inbound traffic for this long.
    pub idle_timeout: Option<Duration>,
    /// How long a graceful shutdown waits for sessions to finish
    /// before force-closing them.
    pub drain_timeout: Duration,
    /// Max admission cost one worker turn drains from one connection
    /// before rotating to the next tenant (fairness granularity).
    pub worker_quantum: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            reactors: cores.clamp(1, 4),
            workers: 16,
            max_connections: 4096,
            max_queued_statements: 1024,
            idle_timeout: Some(Duration::from_secs(300)),
            drain_timeout: Duration::from_secs(5),
            worker_quantum: 64,
        }
    }
}

/// Counters exposed by the service tier. The embedding server shares
/// this struct with its protocol so `queries`/`errors` sit next to the
/// connection-level counters.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Connections ever accepted (including ones later shed).
    pub connections: AtomicU64,
    /// Statements executed (maintained by the protocol).
    pub queries: AtomicU64,
    /// Statements that returned an error (maintained by the protocol).
    pub errors: AtomicU64,
    /// Currently open sessions.
    pub active_sessions: AtomicUsize,
    /// Connections refused by the connection budget.
    pub busy_rejected_conns: AtomicU64,
    /// Statements shed by the statement-queue budget.
    pub busy_rejected_stmts: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closed: AtomicU64,
    /// Connections sent a drain goodbye during graceful shutdown.
    pub drained: AtomicU64,
    /// Automatic promotions observed (maintained by the protocol,
    /// mirrored from the cluster supervisor).
    pub auto_failovers: AtomicU64,
    /// Statements transparently replayed against a new writer after a
    /// failover error (maintained by the protocol).
    pub replayed_stmts: AtomicU64,
    /// Detection latency of the last auto-failover, in milliseconds
    /// (maintained by the protocol, mirrored from the supervisor).
    pub detection_ms_last: AtomicU64,
}

/// A running reactor service. Dropping it shuts down gracefully.
pub struct NetServer<P: Proto> {
    shared: Arc<Shared<P>>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    /// Clone of the acceptor's listener (same open file description),
    /// kept so shutdown can flip it nonblocking if the self-connect
    /// wake fails — see [`NetServer::shutdown`].
    wake_listener: Option<TcpListener>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    done: bool,
}

impl<P: Proto> NetServer<P> {
    /// Bind, spawn acceptor + reactor + worker threads, and serve
    /// `proto` until [`NetServer::shutdown`].
    pub fn start(
        proto: Arc<P>,
        config: NetConfig,
        stats: Arc<ServiceStats>,
    ) -> io::Result<NetServer<P>> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let nreactors = config.reactors.max(1);
        let nworkers = config.workers.max(1);

        let mut reactor_shared = Vec::with_capacity(nreactors);
        let mut reactor_parts = Vec::with_capacity(nreactors);
        for _ in 0..nreactors {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            let mut poller = Poller::new()?;
            poller.add(rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;
            reactor_shared.push(Arc::new(reactor::ReactorShared::new(tx)));
            reactor_parts.push((poller, rx));
        }

        let shared = Arc::new(Shared {
            proto,
            admission: Admission::new(config.max_connections, config.max_queued_statements),
            queue: FairQueue::new(),
            reactors: reactor_shared,
            epoch: Instant::now(),
            next_token: AtomicU64::new(0),
            stop_accept: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            force_close: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            stats,
            config,
        });

        let mut reactors = Vec::with_capacity(nreactors);
        for (i, (poller, rx)) in reactor_parts.into_iter().enumerate() {
            let shared = shared.clone();
            let rs = shared.reactors[i].clone();
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("imci-reactor-{i}"))
                    .spawn(move || reactor::reactor_loop(shared, rs, poller, rx))?,
            );
        }
        let mut workers = Vec::with_capacity(nworkers);
        for i in 0..nworkers {
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("imci-worker-{i}"))
                    .spawn(move || reactor::worker_loop(shared))?,
            );
        }
        let wake_listener = listener.try_clone().ok();
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("imci-acceptor".to_string())
                .spawn(move || reactor::acceptor_loop(shared, listener))?
        };

        Ok(NetServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            wake_listener,
            reactors,
            workers,
            done: false,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn stats(&self) -> &ServiceStats {
        &self.shared.stats
    }

    /// Graceful shutdown: stop accepting, let queued statements finish,
    /// send every session a farewell frame, then close. Sessions still
    /// open after `drain_timeout` are force-closed.
    pub fn shutdown(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let shared = &self.shared;

        shared.stop_accept.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection (it re-checks the flag before serving it).
        // Loopback connects can transiently fail — SYN backlog full,
        // ephemeral-port exhaustion — and a lost wake here used to
        // leave the join below parked forever. Retry briefly, then
        // fall back to flipping the shared listener nonblocking: the
        // clone shares the open file description, so once any queued
        // connection (or spurious readiness) returns, every later
        // accept yields WouldBlock and the loop sees the stop flag.
        let mut woke = false;
        for attempt in 0..3 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            if TcpStream::connect(self.local_addr).is_ok() {
                woke = true;
                break;
            }
        }
        if !woke {
            if let Some(l) = &self.wake_listener {
                let _ = l.set_nonblocking(true);
            }
        }
        if let Some(h) = self.acceptor.take() {
            // Bounded: a wedged acceptor must not hang shutdown. Past
            // the deadline the thread is abandoned — stop_accept makes
            // it exit the moment its accept ever returns.
            let join_deadline = Instant::now() + Duration::from_secs(1);
            while !h.is_finished() && Instant::now() < join_deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if h.is_finished() {
                let _ = h.join();
            }
        }

        shared.draining.store(true, Ordering::SeqCst);
        shared.wake_all();
        let deadline = Instant::now() + shared.config.drain_timeout;
        while shared.stats.active_sessions.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if shared.stats.active_sessions.load(Ordering::SeqCst) > 0 {
            shared.force_close.store(true, Ordering::SeqCst);
            let force_deadline = Instant::now() + Duration::from_secs(1);
            while shared.stats.active_sessions.load(Ordering::SeqCst) > 0
                && Instant::now() < force_deadline
            {
                shared.wake_all();
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        // Workers first (they may still be flushing final frames), then
        // the reactors that own the sockets.
        shared.queue.stop();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        shared.stop.store(true, Ordering::SeqCst);
        shared.wake_all();
        for h in self.reactors.drain(..) {
            let _ = h.join();
        }
    }
}

impl<P: Proto> Drop for NetServer<P> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    /// Line-echo protocol exercising every service-tier hook: `echo:`
    /// replies, `slow` statements that occupy a worker, `tenant <t>`
    /// switches the fairness lane, `quit` closes.
    struct EchoProto {
        slow_ms: u64,
    }

    enum EchoUnit {
        Line(String),
        Busy,
        Bye(&'static str),
        Quit,
    }

    impl Proto for EchoProto {
        type Parse = ();
        type Exec = u64;
        type Unit = EchoUnit;

        fn open(&self) -> ((), u64) {
            ((), 0)
        }

        fn decode(&self, _p: &mut (), buf: &mut InputBuf) -> Step<EchoUnit> {
            match buf.take_line() {
                None => Step::NeedMore,
                Some(raw) => {
                    let line = String::from_utf8_lossy(&raw).trim().to_string();
                    if line == "quit" {
                        Step::Poison(EchoUnit::Quit)
                    } else {
                        Step::Unit(EchoUnit::Line(line))
                    }
                }
            }
        }

        fn cost(&self, unit: &EchoUnit) -> usize {
            match unit {
                EchoUnit::Line(l) if !l.starts_with("tenant ") => 1,
                _ => 0,
            }
        }

        fn tenant_of<'u>(&self, unit: &'u EchoUnit) -> Option<&'u str> {
            match unit {
                EchoUnit::Line(l) => l.strip_prefix("tenant "),
                _ => None,
            }
        }

        fn reject(&self, _unit: EchoUnit) -> EchoUnit {
            EchoUnit::Busy
        }

        fn goodbye(&self, why: Goodbye) -> EchoUnit {
            EchoUnit::Bye(match why {
                Goodbye::Drain => "drain",
                Goodbye::IdleTimeout => "idle",
            })
        }

        fn over_budget_frame(&self) -> Vec<u8> {
            b"busy: connection budget\n".to_vec()
        }

        fn run(&self, exec: &mut u64, units: Vec<EchoUnit>, out: &mut Vec<u8>) -> RunOutcome {
            let mut outcome = RunOutcome::default();
            for unit in units {
                match unit {
                    EchoUnit::Line(l) => {
                        if l.starts_with("slow") {
                            std::thread::sleep(Duration::from_millis(self.slow_ms));
                        }
                        *exec += 1;
                        out.extend_from_slice(format!("echo: {l}\n").as_bytes());
                    }
                    EchoUnit::Busy => out.extend_from_slice(b"busy: queue full\n"),
                    EchoUnit::Bye(why) => {
                        out.extend_from_slice(format!("bye: {why}\n").as_bytes());
                        outcome.close = true;
                    }
                    EchoUnit::Quit => outcome.close = true,
                }
            }
            outcome
        }
    }

    fn echo_server(slow_ms: u64, tweak: impl FnOnce(&mut NetConfig)) -> NetServer<EchoProto> {
        let mut config = NetConfig {
            reactors: 1,
            workers: 2,
            ..NetConfig::default()
        };
        tweak(&mut config);
        NetServer::start(
            Arc::new(EchoProto { slow_ms }),
            config,
            Arc::new(ServiceStats::default()),
        )
        .expect("start echo server")
    }

    fn read_line(r: &mut impl BufRead) -> String {
        let mut s = String::new();
        r.read_line(&mut s).expect("read line");
        s
    }

    #[test]
    fn echoes_pipelined_lines_in_order() {
        let mut srv = echo_server(0, |_| {});
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        let mut req = String::new();
        for i in 0..100 {
            req.push_str(&format!("msg-{i}\n"));
        }
        conn.write_all(req.as_bytes()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        for i in 0..100 {
            assert_eq!(read_line(&mut reader), format!("echo: msg-{i}\n"));
        }
        conn.write_all(b"quit\n").unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "", "quit closes without a frame");
        srv.shutdown();
        assert_eq!(srv.stats().active_sessions.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn half_close_after_burst_still_answers_every_request() {
        // Write-then-shutdown(Write) clients deliver their requests and
        // the FIN in the same epoll pass (EPOLLIN|EPOLLRDHUP in one
        // event). The reactor once pre-set eof from the hangup flag,
        // which skipped the read loop and closed without answering the
        // buffered requests.
        let mut srv = echo_server(0, |_| {});
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        let mut req = String::new();
        for i in 0..20 {
            req.push_str(&format!("fin-{i}\n"));
        }
        conn.write_all(req.as_bytes()).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(conn);
        for i in 0..20 {
            assert_eq!(read_line(&mut reader), format!("echo: fin-{i}\n"));
        }
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "", "server closes cleanly after the final reply");
        srv.shutdown();
        assert_eq!(srv.stats().active_sessions.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn saturated_statement_queue_sheds_with_ordered_busy_replies() {
        let mut srv = echo_server(300, |c| {
            c.workers = 1;
            c.max_queued_statements = 2;
        });
        // Occupy the single worker with a slow statement.
        let mut hog = TcpStream::connect(srv.local_addr()).unwrap();
        hog.write_all(b"slow-1\n").unwrap();
        std::thread::sleep(Duration::from_millis(60));

        // Burst past the queue budget on a second connection.
        let mut burst = TcpStream::connect(srv.local_addr()).unwrap();
        for i in 0..10 {
            burst.write_all(format!("b-{i}\n").as_bytes()).unwrap();
        }
        let mut reader = BufReader::new(burst.try_clone().unwrap());
        let replies: Vec<String> = (0..10).map(|_| read_line(&mut reader)).collect();
        let busy = replies.iter().filter(|r| r.starts_with("busy:")).count();
        let echoed = replies.iter().filter(|r| r.starts_with("echo:")).count();
        assert!(busy > 0, "queue budget must shed: {replies:?}");
        assert_eq!(busy + echoed, 10, "every request gets a reply in order");
        assert!(
            srv.stats().busy_rejected_stmts.load(Ordering::SeqCst) >= busy as u64,
            "shed statements are counted"
        );

        // The shed connection is still usable once load passes.
        let mut reader2 = BufReader::new(BufReader::into_inner(reader));
        drop(hog);
        std::thread::sleep(Duration::from_millis(350));
        burst.write_all(b"after\n").unwrap();
        assert_eq!(read_line(&mut reader2), "echo: after\n");
        srv.shutdown();
    }

    #[test]
    fn connection_budget_refuses_with_busy_frame_and_frees_on_close() {
        let mut srv = echo_server(0, |c| c.max_connections = 1);
        let mut first = TcpStream::connect(srv.local_addr()).unwrap();
        first.write_all(b"hi\n").unwrap();
        let mut reader = BufReader::new(first.try_clone().unwrap());
        assert_eq!(read_line(&mut reader), "echo: hi\n");

        let mut second = TcpStream::connect(srv.local_addr()).unwrap();
        let mut refusal = String::new();
        second.read_to_string(&mut refusal).unwrap();
        assert_eq!(refusal, "busy: connection budget\n");
        assert_eq!(srv.stats().busy_rejected_conns.load(Ordering::SeqCst), 1);

        // Budget is released once the first connection closes.
        first.write_all(b"quit\n").unwrap();
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut third_reply = String::new();
        while Instant::now() < deadline {
            let mut third = TcpStream::connect(srv.local_addr()).unwrap();
            third.write_all(b"again\n").unwrap();
            third_reply.clear();
            let mut r = BufReader::new(third);
            r.read_line(&mut third_reply).unwrap();
            if third_reply == "echo: again\n" {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(third_reply, "echo: again\n");
        srv.shutdown();
    }

    #[test]
    fn idle_connections_get_a_goodbye_then_eof() {
        let mut srv = echo_server(0, |c| c.idle_timeout = Some(Duration::from_millis(100)));
        let conn = TcpStream::connect(srv.local_addr()).unwrap();
        let mut reader = BufReader::new(conn);
        let start = Instant::now();
        assert_eq!(read_line(&mut reader), "bye: idle\n");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "");
        assert!(
            start.elapsed() >= Duration::from_millis(90),
            "not closed before the timeout"
        );
        assert_eq!(srv.stats().idle_closed.load(Ordering::SeqCst), 1);
        srv.shutdown();
    }

    #[test]
    fn active_traffic_is_not_idle_closed() {
        let mut srv = echo_server(0, |c| c.idle_timeout = Some(Duration::from_millis(150)));
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        // Keep touching the connection for 3 timeout-lengths.
        for i in 0..9 {
            std::thread::sleep(Duration::from_millis(50));
            conn.write_all(format!("ping-{i}\n").as_bytes()).unwrap();
            assert_eq!(read_line(&mut reader), format!("echo: ping-{i}\n"));
        }
        assert_eq!(srv.stats().idle_closed.load(Ordering::SeqCst), 0);
        srv.shutdown();
    }

    #[test]
    fn graceful_drain_answers_queued_work_then_says_goodbye() {
        let mut srv = echo_server(100, |_| {});
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        conn.write_all(b"slow-before-drain\n").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let handle = std::thread::spawn(move || {
            srv.shutdown();
            srv
        });
        let mut reader = BufReader::new(conn);
        assert_eq!(read_line(&mut reader), "echo: slow-before-drain\n");
        assert_eq!(read_line(&mut reader), "bye: drain\n");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "");
        let srv = handle.join().unwrap();
        assert_eq!(srv.stats().active_sessions.load(Ordering::SeqCst), 0);
        assert_eq!(srv.stats().drained.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn light_tenant_is_not_starved_by_heavy_pipeliner() {
        let mut srv = echo_server(40, |c| {
            c.workers = 1;
            c.worker_quantum = 1;
        });
        let mut heavy = TcpStream::connect(srv.local_addr()).unwrap();
        heavy.write_all(b"tenant heavy\n").unwrap();
        let mut req = String::new();
        for i in 0..20 {
            req.push_str(&format!("slow-h{i}\n"));
        }
        heavy.write_all(req.as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(60));

        let mut light = TcpStream::connect(srv.local_addr()).unwrap();
        light.write_all(b"tenant light\nslow-l0\n").unwrap();
        let start = Instant::now();
        let mut reader = BufReader::new(light);
        assert_eq!(read_line(&mut reader), "echo: tenant light\n");
        assert_eq!(read_line(&mut reader), "echo: slow-l0\n");
        let waited = start.elapsed();
        // Round-robin lanes: the light tenant waits O(one quantum), not
        // for the heavy tenant's whole 20 × 40ms backlog.
        assert!(
            waited < Duration::from_millis(400),
            "light tenant starved for {waited:?}"
        );
        srv.shutdown();
    }

    #[test]
    fn slow_loris_byte_at_a_time_still_gets_served() {
        let mut srv = echo_server(0, |_| {});
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        for b in b"dripfeed\n" {
            conn.write_all(&[*b]).unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut reader = BufReader::new(conn);
        assert_eq!(read_line(&mut reader), "echo: dripfeed\n");
        srv.shutdown();
    }

    #[test]
    fn shutdown_wake_fallback_unblocks_a_nonblocking_acceptor() {
        let mut srv = echo_server(0, |_| {});
        // Simulate the fallback wake: flip the shared listener
        // nonblocking while the acceptor is parked in accept(). The
        // clone shares the open file description, so this reaches the
        // acceptor's fd.
        srv.wake_listener
            .as_ref()
            .expect("wake listener clone")
            .set_nonblocking(true)
            .unwrap();
        // One real connection pops the already-parked blocking accept;
        // every accept after it returns WouldBlock.
        drop(TcpStream::connect(srv.local_addr()).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        srv.shared.stop_accept.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(2);
        while !srv.acceptor.as_ref().unwrap().is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            srv.acceptor.as_ref().unwrap().is_finished(),
            "acceptor must exit via the WouldBlock path once stop_accept is set"
        );
        srv.shutdown();
    }
}
