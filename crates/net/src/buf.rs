//! Growable input buffer with amortised front-consumption.
//!
//! The reactor appends raw socket bytes; [`crate::Proto::decode`] carves
//! frames off the front. Compaction is deferred until the consumed
//! prefix dominates the buffer so steady-state decoding is O(1) per
//! byte rather than O(n) per frame.

/// Byte buffer between the socket and a protocol's frame decoder.
pub struct InputBuf {
    data: Vec<u8>,
    start: usize,
}

impl InputBuf {
    pub fn new() -> Self {
        InputBuf {
            data: Vec::new(),
            start: 0,
        }
    }

    /// Unconsumed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append freshly read socket bytes.
    pub fn append(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Drop `n` bytes from the front (already decoded).
    pub fn consume(&mut self, n: usize) {
        self.start = (self.start + n).min(self.data.len());
        // Compact lazily: only once the dead prefix is both large and the
        // majority of the allocation.
        if self.start > 4096 && self.start * 2 >= self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    /// Extract one `\n`-terminated line (without the terminator), or
    /// `None` if no full line has arrived yet.
    pub fn take_line(&mut self) -> Option<Vec<u8>> {
        let slice = self.as_slice();
        let pos = slice.iter().position(|&b| b == b'\n')?;
        let line = slice[..pos].to_vec();
        self.consume(pos + 1);
        Some(line)
    }
}

impl Default for InputBuf {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_across_appends() {
        let mut b = InputBuf::new();
        b.append(b"hel");
        assert_eq!(b.take_line(), None);
        b.append(b"lo\nwor");
        assert_eq!(b.take_line(), Some(b"hello".to_vec()));
        assert_eq!(b.take_line(), None);
        b.append(b"ld\n\n");
        assert_eq!(b.take_line(), Some(b"world".to_vec()));
        assert_eq!(b.take_line(), Some(b"".to_vec()));
        assert!(b.is_empty());
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut b = InputBuf::new();
        for i in 0..2000u32 {
            b.append(format!("line-{i}\n").as_bytes());
        }
        for i in 0..2000u32 {
            assert_eq!(b.take_line(), Some(format!("line-{i}").into_bytes()));
        }
        assert!(b.is_empty());
    }
}
