//! Admission control: bounded connection and statement budgets, plus
//! the per-tenant fair run queue feeding the worker pool.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::conn::Conn;
use crate::Proto;

/// Global budgets. Both are simple counting semaphores: admission never
/// blocks — a failed acquire becomes a retryable `busy` rejection so
/// overload degrades into fast, bounded errors instead of queue growth.
pub(crate) struct Admission {
    max_conns: usize,
    conns: AtomicUsize,
    max_stmts: usize,
    stmts: AtomicUsize,
}

impl Admission {
    pub fn new(max_conns: usize, max_stmts: usize) -> Self {
        Admission {
            max_conns: max_conns.max(1),
            conns: AtomicUsize::new(0),
            max_stmts: max_stmts.max(1),
            stmts: AtomicUsize::new(0),
        }
    }

    pub fn try_conn(&self) -> bool {
        try_acquire(&self.conns, 1, self.max_conns)
    }

    pub fn release_conn(&self) {
        self.conns.fetch_sub(1, Ordering::SeqCst);
    }

    /// Admit `cost` units of queued statement work (0 always admits).
    pub fn try_stmts(&self, cost: usize) -> bool {
        cost == 0 || try_acquire(&self.stmts, cost, self.max_stmts)
    }

    pub fn release_stmts(&self, cost: usize) {
        if cost > 0 {
            self.stmts.fetch_sub(cost, Ordering::SeqCst);
        }
    }

    #[cfg(test)]
    pub fn queued_stmts(&self) -> usize {
        self.stmts.load(Ordering::SeqCst)
    }
}

fn try_acquire(ctr: &AtomicUsize, amount: usize, max: usize) -> bool {
    let mut cur = ctr.load(Ordering::SeqCst);
    loop {
        // A single oversized statement must still be admittable when the
        // queue is empty, or it could never run at all.
        if cur + amount > max && cur > 0 {
            return false;
        }
        match ctr.compare_exchange_weak(cur, cur + amount, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
}

/// Run queue of connections with pending units, one FIFO lane per
/// tenant, popped round-robin so a tenant pipelining thousands of
/// statements cannot starve a tenant sending one.
///
/// Invariant: a connection appears at most once across all lanes,
/// guarded by its `scheduled` flag — workers re-push a connection that
/// still has queued units, so ordering within a connection is total.
pub(crate) struct FairQueue<P: Proto> {
    inner: Mutex<FqInner<P>>,
    cv: Condvar,
}

/// One fairness lane: tenant name plus its FIFO of runnable connections.
type Lane<P> = (Arc<str>, VecDeque<Arc<Conn<P>>>);

struct FqInner<P: Proto> {
    lanes: Vec<Lane<P>>,
    next: usize,
    stopped: bool,
}

impl<P: Proto> FairQueue<P> {
    pub fn new() -> Self {
        FairQueue {
            inner: Mutex::new(FqInner {
                lanes: Vec::new(),
                next: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
        }
    }

    pub fn push(&self, conn: Arc<Conn<P>>) {
        let tenant = conn.tenant.lock().clone();
        let mut g = self.inner.lock();
        match g.lanes.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, lane)) => lane.push_back(conn),
            None => {
                let mut lane = VecDeque::new();
                lane.push_back(conn);
                g.lanes.push((tenant, lane));
            }
        }
        drop(g);
        self.cv.notify_one();
    }

    /// Block until a connection is runnable; `None` once stopped.
    pub fn pop(&self) -> Option<Arc<Conn<P>>> {
        let mut g = self.inner.lock();
        loop {
            if g.stopped {
                return None;
            }
            let n = g.lanes.len();
            for i in 0..n {
                let idx = (g.next + i) % n;
                if let Some(conn) = g.lanes[idx].1.pop_front() {
                    g.next = (idx + 1) % n;
                    return Some(conn);
                }
            }
            self.cv.wait(&mut g);
        }
    }

    pub fn stop(&self) {
        self.inner.lock().stopped = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_budget_sheds_over_cap_but_admits_oversized_when_empty() {
        let a = Admission::new(8, 4);
        assert!(a.try_stmts(3));
        assert!(!a.try_stmts(2), "3+2 exceeds cap 4");
        assert!(a.try_stmts(1));
        assert!(!a.try_stmts(1));
        a.release_stmts(4);
        // Oversized single acquisition admitted only from empty.
        assert!(a.try_stmts(99));
        assert!(!a.try_stmts(1));
        a.release_stmts(99);
        assert_eq!(a.queued_stmts(), 0);
    }

    #[test]
    fn connection_budget_is_a_hard_cap() {
        let a = Admission::new(2, 16);
        assert!(a.try_conn());
        assert!(a.try_conn());
        assert!(!a.try_conn());
        a.release_conn();
        assert!(a.try_conn());
    }
}
